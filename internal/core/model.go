// Package core implements Browser Polygraph itself: the semi-supervised
// training pipeline of §6.4 (standard scaling → Isolation Forest outlier
// filtering → PCA → k-means), the cluster/user-agent correspondence table
// (Table 3), the Appendix-4 clustering-accuracy metric, and the real-time
// Fraud Detection path with the risk-factor computation of Algorithm 1.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"polygraph/internal/fingerprint"
	"polygraph/internal/kmeans"
	"polygraph/internal/parallel"
	"polygraph/internal/pca"
	"polygraph/internal/pipeline"
	"polygraph/internal/scaler"
	"polygraph/internal/ua"
)

// Sample is one training observation: the coarse-grained feature vector a
// session reported and the user-agent it claimed.
type Sample struct {
	Vector []float64
	UA     ua.Release
}

// Model is a trained Browser Polygraph. Construct with Train or Load.
// The model is immutable after training and safe for concurrent Score
// calls.
type Model struct {
	Features []fingerprint.Feature
	Scaler   *scaler.Standard
	PCA      *pca.PCA // nil when trained with DisablePCA
	KMeans   *kmeans.Model

	// ClusterUAs maps each cluster to the user-agents whose majority of
	// training sessions landed there (Table 3). Clusters capturing no
	// user-agent majority (the paper's unlisted clusters 7 and 8, which
	// absorb perturbed sessions) have no entry.
	ClusterUAs map[int][]ua.Release
	// UACluster is the inverse mapping.
	UACluster map[ua.Release]int

	// Accuracy is the Appendix-4 Formula 1 training accuracy.
	Accuracy float64
	// VersionDivisor is Algorithm 1's empirical divisor (default 4).
	VersionDivisor int
	// TrainedRows counts post-filter training rows.
	TrainedRows int

	// plan caches the flattened scoring layout (see scoreplan.go).
	// Train and Load store it eagerly; hand-assembled models build it
	// lazily on first score. Never copy a Model by value — share the
	// pointer (the plan cache is atomic state).
	plan atomic.Pointer[scorePlan]

	// NoveltyThreshold, when positive, arms the novelty guard:
	// fingerprints whose distance to their nearest centroid (in the
	// model's cluster space) exceeds it are flagged even when their
	// cluster matches their claim. This closes the gap the cluster
	// check alone leaves open — a spoofing engine whose alien surface
	// happens to land nearest a cluster whose user-agents it also
	// claims. Rare-but-legitimate browsers do not trip it: they sit
	// inside their own (small) clusters, so their centroid distance is
	// ordinary (see TrainConfig.NoveltyGuard).
	NoveltyThreshold float64
}

// Result is the outcome of scoring one session.
type Result struct {
	// Cluster is the predicted cluster of the session's fingerprint.
	Cluster int
	// Matched reports whether the claimed user-agent belongs to the
	// predicted cluster. A match means "browser is telling the truth".
	Matched bool
	// RiskFactor is Algorithm 1's score for mismatched sessions: the
	// minimum claimed-vs-cluster-member distance. Matched sessions
	// score 0. A mismatch against an empty cluster (one holding no
	// legitimate user-agent) scores ua.MaxDistance.
	RiskFactor int
	// Novel reports that the novelty guard (when trained in) found the
	// fingerprint unlike anything in the training population.
	Novel bool
	// NoveltyScore is the distance to the nearest centroid in cluster
	// space (0 when the guard is disabled).
	NoveltyScore float64
}

// Flagged reports whether Browser Polygraph flags the session as
// suspicious: any cluster/user-agent mismatch is flagged, whatever its
// risk factor (paper §6.5: "Any mismatch triggers our specialized risk
// analysis function"), as is any novelty-guard hit.
func (r Result) Flagged() bool { return !r.Matched || r.Novel }

// Dim returns the feature dimensionality the model expects.
func (m *Model) Dim() int { return len(m.Features) }

// checkTrained rejects scoring on a model that never went through Train
// or Load (a zero Model, or one whose deserialization was incomplete)
// with ErrNotTrained rather than a nil-pointer panic deep in a stage.
func (m *Model) checkTrained() error {
	if m.Scaler == nil || m.KMeans == nil {
		return fmt.Errorf("core: %w", ErrNotTrained)
	}
	return nil
}

// Score classifies one fingerprint vector against a claimed user-agent.
// It is the latency-critical online path (paper budget: 100 ms; actual
// cost is sub-microsecond). Steady-state calls are allocation-free: the
// flattened plan supplies pooled scratch buffers. Callers scoring in a
// tight loop can avoid even the pool round-trip with NewScratch +
// ScoreWith.
func (m *Model) Score(vector []float64, claimed ua.Release) (Result, error) {
	return m.ScoreWith(nil, vector, claimed)
}

// ScoreWith is Score with caller-owned scratch buffers (see NewScratch),
// the zero-allocation entry point for per-connection scoring loops. A
// nil scratch borrows one from the model's pool. The scratch must not be
// used concurrently.
func (m *Model) ScoreWith(s *Scratch, vector []float64, claimed ua.Release) (Result, error) {
	if err := m.checkTrained(); err != nil {
		return Result{}, err
	}
	if len(vector) != m.Dim() {
		return Result{}, fmt.Errorf("core: vector has %d features, model expects %d", len(vector), m.Dim())
	}
	p := m.scorePlanNow()
	if !p.valid {
		return m.scoreSlow(vector, claimed)
	}
	if s == nil {
		pooled := p.getScratch()
		res := m.scoreOnPlan(p, pooled, vector, claimed)
		p.putScratch(pooled)
		return res, nil
	}
	return m.scoreOnPlan(p, s, vector, claimed), nil
}

// scoreSlow is the component-path fallback for models whose parts are
// dimensionally inconsistent (only reachable with hand-assembled
// models); it preserves the precise component error messages.
func (m *Model) scoreSlow(vector []float64, claimed ua.Release) (Result, error) {
	scaled, err := m.Scaler.TransformVec(vector)
	if err != nil {
		return Result{}, err
	}
	cluster, dist, err := m.clusterAndDistance(scaled)
	if err != nil {
		return Result{}, err
	}
	res := Result{Cluster: cluster}
	if m.NoveltyThreshold > 0 {
		res.NoveltyScore = dist
		res.Novel = dist > m.NoveltyThreshold
	}
	members := m.ClusterUAs[cluster]
	for _, r := range members {
		if r == claimed {
			res.Matched = true
			if res.Novel {
				// The claim is cluster-consistent but the surface is
				// alien: maximum risk, per the guard's purpose.
				res.RiskFactor = ua.MaxDistance
			}
			return res, nil
		}
	}
	// Algorithm 1: riskFactor = min distance to any user-agent of the
	// predicted cluster.
	risk := ua.MaxDistance
	for _, r := range members {
		if d := ua.Distance(claimed, r, m.VersionDivisor); d < risk {
			risk = d
		}
	}
	res.RiskFactor = risk
	return res, nil
}

// ScoreBatch scores many sessions at once, fanning the rows out over the
// shared worker pool (GOMAXPROCS workers). Row i of the result is exactly
// what Score(vectors[i], claims[i]) returns — batching changes throughput,
// never outcomes — which makes it the offline/backfill counterpart of the
// per-request Score path (paper §6.4: 205k sessions scored in one pass).
func (m *Model) ScoreBatch(vectors [][]float64, claims []ua.Release) ([]Result, error) {
	return m.ScoreBatchWorkers(vectors, claims, 0)
}

// ScoreBatchWorkers is ScoreBatch with an explicit pool size (0 =
// GOMAXPROCS, 1 = serial). On error it reports the failure of the
// lowest-index bad row, so the error is deterministic under concurrency.
func (m *Model) ScoreBatchWorkers(vectors [][]float64, claims []ua.Release, workers int) ([]Result, error) {
	return m.ScoreBatchContext(context.Background(), vectors, claims, workers)
}

// ScoreBatchContext is ScoreBatchWorkers with cooperative cancellation
// at chunk boundaries: a cancelled batch returns an error matching
// errors.Is(err, ErrCanceled) within one chunk of work. A batch that
// completes is bit-identical to ScoreBatch's — rows are independent and
// chunk geometry never depends on the context.
func (m *Model) ScoreBatchContext(ctx context.Context, vectors [][]float64, claims []ua.Release, workers int) ([]Result, error) {
	if err := m.checkTrained(); err != nil {
		return nil, err
	}
	// Report into a request trace when the ingress attached one (see
	// pipeline.SpanRecorder); a bare context makes this a no-op.
	defer pipeline.StartSpan(ctx, "score-batch")()
	if len(vectors) != len(claims) {
		return nil, fmt.Errorf("core: %w: %d vectors vs %d claims", ErrBadInput, len(vectors), len(claims))
	}
	out := make([]Result, len(vectors))
	var mu sync.Mutex
	errIdx, errVal := -1, error(nil)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx == -1 || i < errIdx {
			errIdx, errVal = i, err
		}
		mu.Unlock()
	}
	p := m.scorePlanNow()
	// Adaptive dispatch: small or cheap batches run serially — the
	// crossover is decided from the plan's per-row cost estimate, so the
	// batch path never loses to a plain loop (rows are independent, so
	// the results are bit-identical either way).
	plan := parallel.PlanFor(workers, len(vectors), p.perItemNs)
	if err := parallel.ForContext(ctx, plan.Workers, len(vectors), plan.Chunk, func(start, end int) {
		if !p.valid {
			for i := start; i < end; i++ {
				res, err := m.scoreSlowChecked(vectors[i], claims[i])
				if err != nil {
					record(i, err)
					continue
				}
				out[i] = res
			}
			return
		}
		s := p.getScratch()
		for i := start; i < end; i++ {
			if len(vectors[i]) != p.dim {
				record(i, fmt.Errorf("core: vector has %d features, model expects %d", len(vectors[i]), p.dim))
				continue
			}
			out[i] = m.scoreOnPlan(p, s, vectors[i], claims[i])
		}
		p.putScratch(s)
	}); err != nil {
		return nil, fmt.Errorf("core: score batch: %w", pipeline.Canceled(err))
	}
	if errVal != nil {
		return nil, fmt.Errorf("core: score batch row %d: %w", errIdx, errVal)
	}
	return out, nil
}

// ScoreStringBatchContext is ScoreBatchContext for sessions that deliver
// raw user-agent strings: row i of a completed batch is exactly what
// ScoreString(vectors[i], userAgents[i]) returns — including the
// unparseable-user-agent rule (cluster predicted, Matched false,
// RiskFactor ua.MaxDistance) — so the TCP frame coalescer can batch
// wire frames without changing a single verdict. Dispatch is the same
// adaptive parallel.PlanFor crossover as ScoreBatchContext; on error the
// lowest-index bad row is reported.
func (m *Model) ScoreStringBatchContext(ctx context.Context, vectors [][]float64, userAgents []string, workers int) ([]Result, error) {
	if err := m.checkTrained(); err != nil {
		return nil, err
	}
	defer pipeline.StartSpan(ctx, "score-batch")()
	if len(vectors) != len(userAgents) {
		return nil, fmt.Errorf("core: %w: %d vectors vs %d user-agents", ErrBadInput, len(vectors), len(userAgents))
	}
	out := make([]Result, len(vectors))
	var mu sync.Mutex
	errIdx, errVal := -1, error(nil)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx == -1 || i < errIdx {
			errIdx, errVal = i, err
		}
		mu.Unlock()
	}
	p := m.scorePlanNow()
	plan := parallel.PlanFor(workers, len(vectors), p.perItemNs)
	if err := parallel.ForContext(ctx, plan.Workers, len(vectors), plan.Chunk, func(start, end int) {
		// Each row routes through ScoreStringWith, the exact per-frame
		// serial path, with one pooled scratch per chunk — parity with
		// the single-frame path is by construction, not by reimplementation.
		var s *Scratch
		if p.valid {
			s = p.getScratch()
			defer p.putScratch(s)
		}
		for i := start; i < end; i++ {
			res, err := m.ScoreStringWith(s, vectors[i], userAgents[i])
			if err != nil {
				record(i, err)
				continue
			}
			out[i] = res
		}
	}); err != nil {
		return nil, fmt.Errorf("core: score string batch: %w", pipeline.Canceled(err))
	}
	if errVal != nil {
		return nil, fmt.Errorf("core: score string batch row %d: %w", errIdx, errVal)
	}
	return out, nil
}

// scoreSlowChecked is scoreSlow behind the standard width check, the
// per-row fallback for batches over dimensionally inconsistent models.
func (m *Model) scoreSlowChecked(vector []float64, claimed ua.Release) (Result, error) {
	if len(vector) != m.Dim() {
		return Result{}, fmt.Errorf("core: vector has %d features, model expects %d", len(vector), m.Dim())
	}
	return m.scoreSlow(vector, claimed)
}

// ScoreString is Score for sessions that deliver a raw user-agent string.
// Unparseable user-agents are maximally risky by definition — a browser
// that cannot state a coherent identity fails the polygraph.
func (m *Model) ScoreString(vector []float64, userAgent string) (Result, error) {
	return m.ScoreStringWith(nil, vector, userAgent)
}

// ScoreStringWith is ScoreString with caller-owned scratch (see
// ScoreWith). Only the user-agent parse allocates on this path.
func (m *Model) ScoreStringWith(s *Scratch, vector []float64, userAgent string) (Result, error) {
	claimed, err := ua.Parse(userAgent)
	if err != nil {
		cluster, cerr := m.predictClusterWith(s, vector)
		if cerr != nil {
			return Result{}, cerr
		}
		return Result{Cluster: cluster, Matched: false, RiskFactor: ua.MaxDistance}, nil
	}
	return m.ScoreWith(s, vector, claimed)
}

// predictCluster runs the scale→project→nearest-centroid pipeline.
func (m *Model) predictCluster(vector []float64) (int, error) {
	return m.predictClusterWith(nil, vector)
}

// predictClusterWith is predictCluster on the flattened plan with
// optional caller scratch; mismatched widths and inconsistent models
// fall back to the component path for its precise errors.
func (m *Model) predictClusterWith(s *Scratch, vector []float64) (int, error) {
	if err := m.checkTrained(); err != nil {
		return 0, err
	}
	if p := m.scorePlanNow(); p.valid && len(vector) == p.dim {
		if s == nil {
			pooled := p.getScratch()
			c, _ := p.assign(p.transform(pooled, vector))
			p.putScratch(pooled)
			return c, nil
		}
		c, _ := p.assign(p.transform(s, vector))
		return c, nil
	}
	scaled, err := m.Scaler.TransformVec(vector)
	if err != nil {
		return 0, err
	}
	return m.clusterOfScaled(scaled)
}

// clusterOfScaled maps an already-scaled vector to its cluster.
func (m *Model) clusterOfScaled(scaled []float64) (int, error) {
	c, _, err := m.clusterAndDistance(scaled)
	return c, err
}

// clusterAndDistance maps an already-scaled vector to its cluster and its
// Euclidean distance to that cluster's centroid in cluster space.
func (m *Model) clusterAndDistance(scaled []float64) (int, float64, error) {
	x := scaled
	if m.PCA != nil {
		proj, err := m.PCA.TransformVec(scaled)
		if err != nil {
			return 0, 0, err
		}
		x = proj
	}
	c := m.KMeans.Predict(x)
	return c, m.KMeans.Distance(x, c), nil
}

// PredictCluster exposes the cluster assignment without risk analysis —
// the drift detector and the experiments need it.
func (m *Model) PredictCluster(vector []float64) (int, error) {
	return m.predictCluster(vector)
}

// ClusterTable renders the Table 3 view: cluster number → sorted
// user-agent ranges, compressed as "Chrome 110-113".
func (m *Model) ClusterTable() []ClusterRow {
	rows := make([]ClusterRow, 0, len(m.ClusterUAs))
	for c, uas := range m.ClusterUAs {
		rows = append(rows, ClusterRow{Cluster: c, UserAgents: CompressReleases(uas)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cluster < rows[j].Cluster })
	return rows
}

// ClusterRow is one line of the Table 3 rendering.
type ClusterRow struct {
	Cluster    int
	UserAgents string
}

// CompressReleases renders a release set as the paper's table notation:
// contiguous same-vendor version runs become "Vendor lo-hi".
func CompressReleases(releases []ua.Release) string {
	byVendor := map[ua.Vendor][]int{}
	for _, r := range releases {
		byVendor[r.Vendor] = append(byVendor[r.Vendor], r.Version)
	}
	vendors := []ua.Vendor{ua.Chrome, ua.Edge, ua.Firefox}
	var parts []string
	for _, v := range vendors {
		versions := byVendor[v]
		if len(versions) == 0 {
			continue
		}
		sort.Ints(versions)
		runStart := versions[0]
		prev := versions[0]
		flush := func(end int) {
			if runStart == end {
				parts = append(parts, fmt.Sprintf("%s %d", v, runStart))
			} else {
				parts = append(parts, fmt.Sprintf("%s %d-%d", v, runStart, end))
			}
		}
		for _, ver := range versions[1:] {
			if ver == prev { // duplicate
				continue
			}
			if ver != prev+1 {
				flush(prev)
				runStart = ver
			}
			prev = ver
		}
		flush(prev)
	}
	return join(parts, ", ")
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
