// Package core implements Browser Polygraph itself: the semi-supervised
// training pipeline of §6.4 (standard scaling → Isolation Forest outlier
// filtering → PCA → k-means), the cluster/user-agent correspondence table
// (Table 3), the Appendix-4 clustering-accuracy metric, and the real-time
// Fraud Detection path with the risk-factor computation of Algorithm 1.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"polygraph/internal/fingerprint"
	"polygraph/internal/kmeans"
	"polygraph/internal/parallel"
	"polygraph/internal/pca"
	"polygraph/internal/pipeline"
	"polygraph/internal/scaler"
	"polygraph/internal/ua"
)

// Sample is one training observation: the coarse-grained feature vector a
// session reported and the user-agent it claimed.
type Sample struct {
	Vector []float64
	UA     ua.Release
}

// Model is a trained Browser Polygraph. Construct with Train or Load.
// The model is immutable after training and safe for concurrent Score
// calls.
type Model struct {
	Features []fingerprint.Feature
	Scaler   *scaler.Standard
	PCA      *pca.PCA // nil when trained with DisablePCA
	KMeans   *kmeans.Model

	// ClusterUAs maps each cluster to the user-agents whose majority of
	// training sessions landed there (Table 3). Clusters capturing no
	// user-agent majority (the paper's unlisted clusters 7 and 8, which
	// absorb perturbed sessions) have no entry.
	ClusterUAs map[int][]ua.Release
	// UACluster is the inverse mapping.
	UACluster map[ua.Release]int

	// Accuracy is the Appendix-4 Formula 1 training accuracy.
	Accuracy float64
	// VersionDivisor is Algorithm 1's empirical divisor (default 4).
	VersionDivisor int
	// TrainedRows counts post-filter training rows.
	TrainedRows int

	// NoveltyThreshold, when positive, arms the novelty guard:
	// fingerprints whose distance to their nearest centroid (in the
	// model's cluster space) exceeds it are flagged even when their
	// cluster matches their claim. This closes the gap the cluster
	// check alone leaves open — a spoofing engine whose alien surface
	// happens to land nearest a cluster whose user-agents it also
	// claims. Rare-but-legitimate browsers do not trip it: they sit
	// inside their own (small) clusters, so their centroid distance is
	// ordinary (see TrainConfig.NoveltyGuard).
	NoveltyThreshold float64
}

// Result is the outcome of scoring one session.
type Result struct {
	// Cluster is the predicted cluster of the session's fingerprint.
	Cluster int
	// Matched reports whether the claimed user-agent belongs to the
	// predicted cluster. A match means "browser is telling the truth".
	Matched bool
	// RiskFactor is Algorithm 1's score for mismatched sessions: the
	// minimum claimed-vs-cluster-member distance. Matched sessions
	// score 0. A mismatch against an empty cluster (one holding no
	// legitimate user-agent) scores ua.MaxDistance.
	RiskFactor int
	// Novel reports that the novelty guard (when trained in) found the
	// fingerprint unlike anything in the training population.
	Novel bool
	// NoveltyScore is the distance to the nearest centroid in cluster
	// space (0 when the guard is disabled).
	NoveltyScore float64
}

// Flagged reports whether Browser Polygraph flags the session as
// suspicious: any cluster/user-agent mismatch is flagged, whatever its
// risk factor (paper §6.5: "Any mismatch triggers our specialized risk
// analysis function"), as is any novelty-guard hit.
func (r Result) Flagged() bool { return !r.Matched || r.Novel }

// Dim returns the feature dimensionality the model expects.
func (m *Model) Dim() int { return len(m.Features) }

// checkTrained rejects scoring on a model that never went through Train
// or Load (a zero Model, or one whose deserialization was incomplete)
// with ErrNotTrained rather than a nil-pointer panic deep in a stage.
func (m *Model) checkTrained() error {
	if m.Scaler == nil || m.KMeans == nil {
		return fmt.Errorf("core: %w", ErrNotTrained)
	}
	return nil
}

// Score classifies one fingerprint vector against a claimed user-agent.
// It is the latency-critical online path (paper budget: 100 ms; actual
// cost is microseconds).
func (m *Model) Score(vector []float64, claimed ua.Release) (Result, error) {
	if err := m.checkTrained(); err != nil {
		return Result{}, err
	}
	if len(vector) != m.Dim() {
		return Result{}, fmt.Errorf("core: vector has %d features, model expects %d", len(vector), m.Dim())
	}
	scaled, err := m.Scaler.TransformVec(vector)
	if err != nil {
		return Result{}, err
	}
	cluster, dist, err := m.clusterAndDistance(scaled)
	if err != nil {
		return Result{}, err
	}
	res := Result{Cluster: cluster}
	if m.NoveltyThreshold > 0 {
		res.NoveltyScore = dist
		res.Novel = dist > m.NoveltyThreshold
	}
	members := m.ClusterUAs[cluster]
	for _, r := range members {
		if r == claimed {
			res.Matched = true
			if res.Novel {
				// The claim is cluster-consistent but the surface is
				// alien: maximum risk, per the guard's purpose.
				res.RiskFactor = ua.MaxDistance
			}
			return res, nil
		}
	}
	// Algorithm 1: riskFactor = min distance to any user-agent of the
	// predicted cluster.
	risk := ua.MaxDistance
	for _, r := range members {
		if d := ua.Distance(claimed, r, m.VersionDivisor); d < risk {
			risk = d
		}
	}
	res.RiskFactor = risk
	return res, nil
}

// ScoreBatch scores many sessions at once, fanning the rows out over the
// shared worker pool (GOMAXPROCS workers). Row i of the result is exactly
// what Score(vectors[i], claims[i]) returns — batching changes throughput,
// never outcomes — which makes it the offline/backfill counterpart of the
// per-request Score path (paper §6.4: 205k sessions scored in one pass).
func (m *Model) ScoreBatch(vectors [][]float64, claims []ua.Release) ([]Result, error) {
	return m.ScoreBatchWorkers(vectors, claims, 0)
}

// ScoreBatchWorkers is ScoreBatch with an explicit pool size (0 =
// GOMAXPROCS, 1 = serial). On error it reports the failure of the
// lowest-index bad row, so the error is deterministic under concurrency.
func (m *Model) ScoreBatchWorkers(vectors [][]float64, claims []ua.Release, workers int) ([]Result, error) {
	return m.ScoreBatchContext(context.Background(), vectors, claims, workers)
}

// ScoreBatchContext is ScoreBatchWorkers with cooperative cancellation
// at chunk boundaries: a cancelled batch returns an error matching
// errors.Is(err, ErrCanceled) within one chunk of work. A batch that
// completes is bit-identical to ScoreBatch's — rows are independent and
// chunk geometry never depends on the context.
func (m *Model) ScoreBatchContext(ctx context.Context, vectors [][]float64, claims []ua.Release, workers int) ([]Result, error) {
	if err := m.checkTrained(); err != nil {
		return nil, err
	}
	// Report into a request trace when the ingress attached one (see
	// pipeline.SpanRecorder); a bare context makes this a no-op.
	defer pipeline.StartSpan(ctx, "score-batch")()
	if len(vectors) != len(claims) {
		return nil, fmt.Errorf("core: %w: %d vectors vs %d claims", ErrBadInput, len(vectors), len(claims))
	}
	out := make([]Result, len(vectors))
	var mu sync.Mutex
	errIdx, errVal := -1, error(nil)
	if err := parallel.ForContext(ctx, workers, len(vectors), 0, func(start, end int) {
		for i := start; i < end; i++ {
			res, err := m.Score(vectors[i], claims[i])
			if err != nil {
				mu.Lock()
				if errIdx == -1 || i < errIdx {
					errIdx, errVal = i, err
				}
				mu.Unlock()
				continue
			}
			out[i] = res
		}
	}); err != nil {
		return nil, fmt.Errorf("core: score batch: %w", pipeline.Canceled(err))
	}
	if errVal != nil {
		return nil, fmt.Errorf("core: score batch row %d: %w", errIdx, errVal)
	}
	return out, nil
}

// ScoreString is Score for sessions that deliver a raw user-agent string.
// Unparseable user-agents are maximally risky by definition — a browser
// that cannot state a coherent identity fails the polygraph.
func (m *Model) ScoreString(vector []float64, userAgent string) (Result, error) {
	claimed, err := ua.Parse(userAgent)
	if err != nil {
		cluster, cerr := m.predictCluster(vector)
		if cerr != nil {
			return Result{}, cerr
		}
		return Result{Cluster: cluster, Matched: false, RiskFactor: ua.MaxDistance}, nil
	}
	return m.Score(vector, claimed)
}

// predictCluster runs the scale→project→nearest-centroid pipeline.
func (m *Model) predictCluster(vector []float64) (int, error) {
	if err := m.checkTrained(); err != nil {
		return 0, err
	}
	scaled, err := m.Scaler.TransformVec(vector)
	if err != nil {
		return 0, err
	}
	return m.clusterOfScaled(scaled)
}

// clusterOfScaled maps an already-scaled vector to its cluster.
func (m *Model) clusterOfScaled(scaled []float64) (int, error) {
	c, _, err := m.clusterAndDistance(scaled)
	return c, err
}

// clusterAndDistance maps an already-scaled vector to its cluster and its
// Euclidean distance to that cluster's centroid in cluster space.
func (m *Model) clusterAndDistance(scaled []float64) (int, float64, error) {
	x := scaled
	if m.PCA != nil {
		proj, err := m.PCA.TransformVec(scaled)
		if err != nil {
			return 0, 0, err
		}
		x = proj
	}
	c := m.KMeans.Predict(x)
	return c, m.KMeans.Distance(x, c), nil
}

// PredictCluster exposes the cluster assignment without risk analysis —
// the drift detector and the experiments need it.
func (m *Model) PredictCluster(vector []float64) (int, error) {
	return m.predictCluster(vector)
}

// ClusterTable renders the Table 3 view: cluster number → sorted
// user-agent ranges, compressed as "Chrome 110-113".
func (m *Model) ClusterTable() []ClusterRow {
	rows := make([]ClusterRow, 0, len(m.ClusterUAs))
	for c, uas := range m.ClusterUAs {
		rows = append(rows, ClusterRow{Cluster: c, UserAgents: CompressReleases(uas)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cluster < rows[j].Cluster })
	return rows
}

// ClusterRow is one line of the Table 3 rendering.
type ClusterRow struct {
	Cluster    int
	UserAgents string
}

// CompressReleases renders a release set as the paper's table notation:
// contiguous same-vendor version runs become "Vendor lo-hi".
func CompressReleases(releases []ua.Release) string {
	byVendor := map[ua.Vendor][]int{}
	for _, r := range releases {
		byVendor[r.Vendor] = append(byVendor[r.Vendor], r.Version)
	}
	vendors := []ua.Vendor{ua.Chrome, ua.Edge, ua.Firefox}
	var parts []string
	for _, v := range vendors {
		versions := byVendor[v]
		if len(versions) == 0 {
			continue
		}
		sort.Ints(versions)
		runStart := versions[0]
		prev := versions[0]
		flush := func(end int) {
			if runStart == end {
				parts = append(parts, fmt.Sprintf("%s %d", v, runStart))
			} else {
				parts = append(parts, fmt.Sprintf("%s %d-%d", v, runStart, end))
			}
		}
		for _, ver := range versions[1:] {
			if ver == prev { // duplicate
				continue
			}
			if ver != prev+1 {
				flush(prev)
				runStart = ver
			}
			prev = ver
		}
		flush(prev)
	}
	return join(parts, ", ")
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
