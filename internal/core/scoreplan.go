package core

import (
	"math"
	"sync"

	"polygraph/internal/ua"
)

// scorePlan is the flattened, read-only scoring layout of a trained
// Model: every component the hot path touches — scaler statistics, PCA
// mean and component rows, k-means centroids, and the per-cluster
// user-agent table — copied once into a handful of contiguous slices so
// steady-state scoring walks flat memory instead of chasing component
// pointers, and allocates nothing.
//
// The plan is built once (eagerly at the end of Train and Load, lazily
// on first score for hand-assembled models) and never mutated, so it is
// safe to share across goroutines. It deliberately does NOT bake in
// VersionDivisor or NoveltyThreshold: those are plain Model fields that
// experiments tweak after training, and the scoring code reads them live
// so the plan can never go stale against them.
//
// Arithmetic is kept bit-identical to the component paths it replaces:
//   - scaling folds the skip mask and the zero-std guard into the
//     (means, stds) tables as exact identities (mean 0, std 1 — x−0 and
//     x/1 round to x), so the fused loop reproduces
//     scaler.transformInto bit for bit;
//   - projection accumulates (scaled[j]−pcaMean[j])·w in ascending j per
//     component, exactly pca.TransformVecInto's order;
//   - assignment scans centroids in ascending order with a strict <,
//     summing squared diffs in ascending j, exactly kmeans
//     nearestCentroid + sqDist, then takes one sqrt.
//
// The worker-invariance and audit-replay suites pin this equivalence.
type scorePlan struct {
	// valid is false when the model's components are dimensionally
	// inconsistent (possible only for hand-assembled models); scoring
	// then falls back to the component path, which reports the precise
	// component error.
	valid bool

	dim   int // feature width
	means []float64
	stds  []float64 // zero/skipped entries normalized to exact identities

	pcaK    int       // 0 when PCA is disabled
	pcaMean []float64 // len dim
	pcaComp []float64 // row-major pcaK×dim

	k, cdim int       // cluster count and cluster-space width
	cents   []float64 // row-major k×cdim

	// Per-cluster user-agent table: cluster c's members are
	// uaList[uaOff[c]:uaOff[c+1]], in ClusterUAs order.
	uaOff  []int32 // len k+1
	uaList []ua.Release

	// perItemNs estimates one Score's cost for parallel.PlanFor.
	perItemNs float64

	scratch sync.Pool // of *Scratch
}

// Scratch holds the per-scorer reusable buffers of the fast path. A
// Scratch is model-agnostic — buffers grow on demand and survive model
// swaps — but must not be shared between concurrent scorers. Obtain one
// with Model.NewScratch and thread it through ScoreWith /
// ScoreStringWith; Score and ScoreBatch manage pooled scratch
// internally.
type Scratch struct {
	scaled []float64 // scaled feature vector (len dim)
	x      []float64 // PCA projection (len pcaK), unused when PCA is off
}

// NewScratch returns scratch buffers for the allocation-free scoring
// entry points. The receiver only sizes the initial buffers; the scratch
// works with any model.
func (m *Model) NewScratch() *Scratch {
	s := &Scratch{}
	if p := m.plan.Load(); p != nil && p.valid {
		s.scaled = make([]float64, p.dim)
		s.x = make([]float64, p.pcaK)
	}
	return s
}

// scorePlanNow returns the model's plan, building it on first use.
// Builds are idempotent and deterministic, so a racing double build is
// harmless; CompareAndSwap keeps exactly one. Train and Load Store a
// fresh plan when the model is complete, which also supersedes any plan
// built mid-training (buildClusterTable scores reference vectors before
// the UA table exists).
func (m *Model) scorePlanNow() *scorePlan {
	if p := m.plan.Load(); p != nil {
		return p
	}
	m.plan.CompareAndSwap(nil, buildScorePlan(m))
	return m.plan.Load()
}

// buildScorePlan flattens m's components. Callers have already passed
// checkTrained, so Scaler and KMeans are non-nil.
func buildScorePlan(m *Model) *scorePlan {
	p := &scorePlan{}
	p.scratch.New = func() any { return &Scratch{} }
	dim := m.Dim()
	p.dim = dim
	if len(m.Scaler.Means) != dim || len(m.Scaler.Stds) != dim {
		return p
	}
	p.means = append([]float64(nil), m.Scaler.Means...)
	p.stds = make([]float64, dim)
	skip := m.Scaler.Skip()
	for j := 0; j < dim; j++ {
		if skip != nil && skip[j] {
			// Pass-through column: x−0 and x/1 are exact, so the fused
			// loop needs no branch.
			p.means[j] = 0
			p.stds[j] = 1
			continue
		}
		sd := m.Scaler.Stds[j]
		if sd <= 0 {
			sd = 1 // center-only column: divide by exactly 1
		}
		p.stds[j] = sd
	}

	cdim := dim
	if m.PCA != nil {
		if len(m.PCA.Mean) != dim || m.PCA.K < 1 {
			return p
		}
		rows, cols := m.PCA.Components.Dims()
		if rows < m.PCA.K || cols != dim {
			return p
		}
		p.pcaK = m.PCA.K
		p.pcaMean = append([]float64(nil), m.PCA.Mean...)
		p.pcaComp = make([]float64, p.pcaK*dim)
		for c := 0; c < p.pcaK; c++ {
			copy(p.pcaComp[c*dim:(c+1)*dim], m.PCA.Components.RawRow(c))
		}
		cdim = p.pcaK
	}

	km := m.KMeans
	if km.K < 1 || km.Dim != cdim {
		return p
	}
	rows, cols := km.Centroids.Dims()
	if rows < km.K || cols != cdim {
		return p
	}
	p.k, p.cdim = km.K, cdim
	p.cents = make([]float64, km.K*cdim)
	for c := 0; c < km.K; c++ {
		copy(p.cents[c*cdim:(c+1)*cdim], km.Centroids.RawRow(c))
	}

	p.uaOff = make([]int32, km.K+1)
	for c := 0; c < km.K; c++ {
		p.uaOff[c] = int32(len(p.uaList))
		p.uaList = append(p.uaList, m.ClusterUAs[c]...)
	}
	p.uaOff[km.K] = int32(len(p.uaList))

	flops := dim + p.pcaK*dim + p.k*p.cdim
	p.perItemNs = 50 + 1.5*float64(flops)
	p.valid = true
	return p
}

func (p *scorePlan) getScratch() *Scratch { return p.scratch.Get().(*Scratch) }
func (p *scorePlan) putScratch(s *Scratch) {
	p.scratch.Put(s)
}

// transform scales vector and, when PCA is enabled, projects it, using
// s's buffers. It returns the cluster-space vector (aliasing s). The
// caller has validated len(vector) == p.dim.
func (p *scorePlan) transform(s *Scratch, vector []float64) []float64 {
	if cap(s.scaled) < p.dim {
		s.scaled = make([]float64, p.dim)
	}
	scaled := s.scaled[:p.dim]
	for j, v := range vector {
		scaled[j] = (v - p.means[j]) / p.stds[j]
	}
	if p.pcaK == 0 {
		return scaled
	}
	if cap(s.x) < p.pcaK {
		s.x = make([]float64, p.pcaK)
	}
	x := s.x[:p.pcaK]
	for c := 0; c < p.pcaK; c++ {
		comp := p.pcaComp[c*p.dim : (c+1)*p.dim]
		sum := 0.0
		for j, w := range comp {
			sum += (scaled[j] - p.pcaMean[j]) * w
		}
		x[c] = sum
	}
	return x
}

// assign returns the nearest centroid and the Euclidean distance to it.
func (p *scorePlan) assign(x []float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c := 0; c < p.k; c++ {
		cent := p.cents[c*p.cdim : (c+1)*p.cdim]
		d := 0.0
		for j, xv := range x {
			diff := xv - cent[j]
			d += diff * diff
		}
		if d < bestD {
			bestD = d
			best = c
		}
	}
	return best, math.Sqrt(bestD)
}

// scoreOnPlan is the allocation-free core of Score: transform, assign,
// novelty check, and the Algorithm 1 risk loop over the flat UA table.
// VersionDivisor and NoveltyThreshold are read live from the Model.
func (m *Model) scoreOnPlan(p *scorePlan, s *Scratch, vector []float64, claimed ua.Release) Result {
	x := p.transform(s, vector)
	cluster, dist := p.assign(x)
	res := Result{Cluster: cluster}
	if m.NoveltyThreshold > 0 {
		res.NoveltyScore = dist
		res.Novel = dist > m.NoveltyThreshold
	}
	members := p.uaList[p.uaOff[cluster]:p.uaOff[cluster+1]]
	for _, r := range members {
		if r == claimed {
			res.Matched = true
			if res.Novel {
				// The claim is cluster-consistent but the surface is
				// alien: maximum risk, per the guard's purpose.
				res.RiskFactor = ua.MaxDistance
			}
			return res
		}
	}
	// Algorithm 1: riskFactor = min distance to any user-agent of the
	// predicted cluster.
	risk := ua.MaxDistance
	for _, r := range members {
		if d := ua.Distance(claimed, r, m.VersionDivisor); d < risk {
			risk = d
		}
	}
	res.RiskFactor = risk
	return res
}
