package core

import (
	"polygraph/internal/browser"
	"polygraph/internal/fingerprint"
	"polygraph/internal/ua"
)

// ExtractorReference adapts a fingerprint.Extractor into a
// ReferenceProvider: the reference vector of a release is its pristine
// fingerprint (no modifiers) on the given OS — exactly the per-release
// baselines collected during Candidate Fingerprint Generation (§6.1) that
// the paper used to align sparse user-agents.
type ExtractorReference struct {
	Extractor *fingerprint.Extractor
	OS        ua.OS
}

// ReferenceVector implements ReferenceProvider.
func (x ExtractorReference) ReferenceVector(r ua.Release) ([]float64, bool) {
	if x.Extractor == nil || !r.Valid() {
		return nil, false
	}
	return x.Extractor.Extract(browser.Profile{Release: r, OS: x.OS}), true
}
