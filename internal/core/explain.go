package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"polygraph/internal/parallel"
	"polygraph/internal/pipeline"
	"polygraph/internal/ua"
)

// ExplanationSchema versions the Explanation JSON shape. Bump it when a
// field changes meaning; the audit ledger records it with every verdict
// so old ledgers stay interpretable.
const ExplanationSchema = 1

// DefaultExplainTopK bounds the per-feature and per-component
// contribution lists when callers pass topK ≤ 0.
const DefaultExplainTopK = 5

// Verdict is the decision part of an explanation: Result plus the
// derived Flagged bit, in a stable JSON shape. It is what the audit
// ledger records and what `auditq replay` re-derives; two verdicts from
// the same model and input are comparable field-for-field.
type Verdict struct {
	Cluster      int     `json:"cluster"`
	Matched      bool    `json:"matched"`
	RiskFactor   int     `json:"risk_factor"`
	Novel        bool    `json:"novel,omitempty"`
	NoveltyScore float64 `json:"novelty_score,omitempty"`
	Flagged      bool    `json:"flagged"`
}

// VerdictOf converts a scoring Result into its ledger form.
func VerdictOf(r Result) Verdict {
	return Verdict{
		Cluster:      r.Cluster,
		Matched:      r.Matched,
		RiskFactor:   r.RiskFactor,
		Novel:        r.Novel,
		NoveltyScore: r.NoveltyScore,
		Flagged:      r.Flagged(),
	}
}

// Result converts back to the scoring Result (Flagged is derived, so
// nothing is lost).
func (v Verdict) Result() Result {
	return Result{
		Cluster:      v.Cluster,
		Matched:      v.Matched,
		RiskFactor:   v.RiskFactor,
		Novel:        v.Novel,
		NoveltyScore: v.NoveltyScore,
	}
}

// FeatureZ is one feature's standardized contribution: the raw reported
// value and its z-score after the model's standard scaler (pass-through
// binary columns keep Z == Raw).
type FeatureZ struct {
	Name string  `json:"name"`
	Raw  float64 `json:"raw"`
	Z    float64 `json:"z"`
}

// ComponentShare is one cluster-space coordinate's contribution to the
// nearest-centroid distance: the projected value, the offset from the
// winning centroid along that axis, and the share of the squared
// distance it accounts for. With PCA disabled the "components" are the
// scaled features themselves.
type ComponentShare struct {
	Component int     `json:"component"`
	Value     float64 `json:"value"`
	Delta     float64 `json:"delta"`
	Share     float64 `json:"share"`
}

// CentroidDist is the distance to one cluster centroid in cluster
// space; the full sorted list shows the assignment margin.
type CentroidDist struct {
	Cluster  int     `json:"cluster"`
	Distance float64 `json:"distance"`
}

// ClaimDistance names the predicted cluster's member closest to the
// claimed user-agent under Algorithm 1's distance — the term that set
// the risk factor for a mismatch.
type ClaimDistance struct {
	UserAgent string `json:"ua"`
	Distance  int    `json:"distance"`
}

// NoveltyExplanation unpacks the novelty-guard decision.
type NoveltyExplanation struct {
	Armed     bool    `json:"armed"`
	Threshold float64 `json:"threshold,omitempty"`
	Score     float64 `json:"score,omitempty"`
	Tripped   bool    `json:"tripped"`
}

// Explanation decomposes one verdict into the evidence behind it: which
// features pushed the session where it landed, how the cluster
// assignment was won, what the cluster-table lookup concluded, and why
// the novelty guard did or did not fire. It is a pure function of
// (model, vector, claim) — no timestamps, no randomness — so replaying
// the same inputs through the same model reproduces it byte for byte.
type Explanation struct {
	Schema  int     `json:"schema"`
	Verdict Verdict `json:"verdict"`

	// Claim is the user-agent the session asserted; ClaimParsed is
	// false when the raw string did not parse (maximum risk by
	// definition).
	Claim       string `json:"claim"`
	ClaimParsed bool   `json:"claim_parsed"`

	// TopFeatures are the topK features by |z|, most anomalous first.
	TopFeatures []FeatureZ `json:"top_features"`
	// Components are the topK cluster-space coordinates by distance
	// share, largest first.
	Components []ComponentShare `json:"components"`
	// Centroids lists every cluster by ascending distance; the gap
	// between the first two entries is the assignment margin.
	Centroids []CentroidDist `json:"centroids"`

	// ClusterUAs renders the predicted cluster's user-agent members in
	// Table 3 notation; Frequent is false for clusters holding no
	// user-agent majority (the paper's unlisted "infrequent" clusters).
	ClusterUAs string `json:"cluster_uas,omitempty"`
	Frequent   bool   `json:"frequent_cluster"`

	// NearestClaim is set for parsed, mismatched claims: the cluster
	// member whose Algorithm 1 distance produced the risk factor.
	NearestClaim *ClaimDistance `json:"nearest_claim,omitempty"`

	Novelty NoveltyExplanation `json:"novelty"`
}

// Explain scores one session and decomposes the verdict. topK ≤ 0 uses
// DefaultExplainTopK. The embedded Verdict is computed by the exact
// Score code path, so Explain(v, c).Verdict always equals
// VerdictOf(Score(v, c)) — the property the audit replay check rests
// on.
func (m *Model) Explain(vector []float64, claimed ua.Release, topK int) (*Explanation, error) {
	res, err := m.Score(vector, claimed)
	if err != nil {
		return nil, err
	}
	return m.explain(vector, claimed.String(), claimed, true, res, topK)
}

// ExplainString is Explain for sessions delivering a raw user-agent
// string, mirroring ScoreString's handling of unparseable claims.
func (m *Model) ExplainString(vector []float64, userAgent string, topK int) (*Explanation, error) {
	claimed, err := ua.Parse(userAgent)
	if err != nil {
		res, serr := m.ScoreString(vector, userAgent)
		if serr != nil {
			return nil, serr
		}
		return m.explain(vector, userAgent, ua.Release{}, false, res, topK)
	}
	res, err := m.Score(vector, claimed)
	if err != nil {
		return nil, err
	}
	return m.explain(vector, claimed.String(), claimed, true, res, topK)
}

// ExplainResult decomposes an already-computed verdict without paying
// for a second scoring pass — the serving tier's audit path, where res
// just came out of ScoreString for the same (vector, userAgent) pair.
// Passing a res that did not come from scoring these inputs produces an
// explanation that contradicts itself; the audit replay check exists to
// catch exactly that.
func (m *Model) ExplainResult(vector []float64, userAgent string, res Result, topK int) (*Explanation, error) {
	if err := m.checkTrained(); err != nil {
		return nil, err
	}
	claimed, err := ua.Parse(userAgent)
	if err != nil {
		return m.explain(vector, userAgent, ua.Release{}, false, res, topK)
	}
	return m.explain(vector, claimed.String(), claimed, true, res, topK)
}

// explain builds the decomposition around an already-computed Result.
func (m *Model) explain(vector []float64, claim string, claimed ua.Release, parsed bool, res Result, topK int) (*Explanation, error) {
	if topK <= 0 {
		topK = DefaultExplainTopK
	}
	scaled, err := m.Scaler.TransformVec(vector)
	if err != nil {
		return nil, err
	}
	x := scaled
	if m.PCA != nil {
		proj, err := m.PCA.TransformVec(scaled)
		if err != nil {
			return nil, err
		}
		x = proj
	}

	ex := &Explanation{
		Schema:      ExplanationSchema,
		Verdict:     VerdictOf(res),
		Claim:       claim,
		ClaimParsed: parsed,
	}

	// Per-feature z-scores, topK by |z|; ties break on feature index so
	// the order is a pure function of the input.
	idx := make([]int, len(scaled))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		za, zb := abs(scaled[idx[a]]), abs(scaled[idx[b]])
		if za != zb {
			return za > zb
		}
		return idx[a] < idx[b]
	})
	n := topK
	if n > len(idx) {
		n = len(idx)
	}
	ex.TopFeatures = make([]FeatureZ, 0, n)
	for _, j := range idx[:n] {
		ex.TopFeatures = append(ex.TopFeatures, FeatureZ{
			Name: m.Features[j].Name(), Raw: vector[j], Z: scaled[j],
		})
	}

	// Distance to every centroid, ascending; the winner is res.Cluster
	// by construction (same nearest-centroid arithmetic).
	k := m.KMeans.K
	ex.Centroids = make([]CentroidDist, k)
	for c := 0; c < k; c++ {
		ex.Centroids[c] = CentroidDist{Cluster: c, Distance: m.KMeans.Distance(x, c)}
	}
	sort.SliceStable(ex.Centroids, func(a, b int) bool {
		if ex.Centroids[a].Distance != ex.Centroids[b].Distance {
			return ex.Centroids[a].Distance < ex.Centroids[b].Distance
		}
		return ex.Centroids[a].Cluster < ex.Centroids[b].Cluster
	})

	// Per-coordinate share of the squared distance to the winning
	// centroid, topK by share.
	cent := m.KMeans.Centroids.RawRow(res.Cluster)
	var sq float64
	deltas := make([]float64, len(x))
	for c := range x {
		d := x[c] - cent[c]
		deltas[c] = d
		sq += d * d
	}
	comp := make([]ComponentShare, len(x))
	for c := range x {
		share := 0.0
		if sq > 0 {
			share = deltas[c] * deltas[c] / sq
		}
		comp[c] = ComponentShare{Component: c, Value: x[c], Delta: deltas[c], Share: share}
	}
	sort.SliceStable(comp, func(a, b int) bool {
		if comp[a].Share != comp[b].Share {
			return comp[a].Share > comp[b].Share
		}
		return comp[a].Component < comp[b].Component
	})
	if len(comp) > topK {
		comp = comp[:topK]
	}
	ex.Components = comp

	// Cluster-table outcome: the predicted cluster's members (Table 3
	// view) and, for parsed mismatches, the member that set the risk
	// factor.
	members := m.ClusterUAs[res.Cluster]
	ex.Frequent = len(members) > 0
	if len(members) > 0 {
		ex.ClusterUAs = CompressReleases(members)
	}
	if parsed && !res.Matched && len(members) > 0 {
		best := ClaimDistance{Distance: ua.MaxDistance + 1}
		for _, r := range members {
			if d := ua.Distance(claimed, r, m.VersionDivisor); d < best.Distance {
				best = ClaimDistance{UserAgent: r.String(), Distance: d}
			}
		}
		if best.Distance <= ua.MaxDistance {
			ex.NearestClaim = &best
		}
	}

	ex.Novelty = NoveltyExplanation{
		Armed:     m.NoveltyThreshold > 0,
		Threshold: m.NoveltyThreshold,
		Score:     res.NoveltyScore,
		Tripped:   res.Novel,
	}
	return ex, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ExplainBatch explains many sessions at once over the shared worker
// pool; row i equals what Explain(vectors[i], claims[i], topK) returns.
func (m *Model) ExplainBatch(vectors [][]float64, claims []ua.Release, topK int) ([]*Explanation, error) {
	return m.ExplainBatchContext(context.Background(), vectors, claims, topK, 0)
}

// ExplainBatchContext is ExplainBatch with an explicit pool size and
// cooperative cancellation at chunk boundaries, mirroring
// ScoreBatchContext's contract: a completed batch is identical for
// every worker count and context.
func (m *Model) ExplainBatchContext(ctx context.Context, vectors [][]float64, claims []ua.Release, topK, workers int) ([]*Explanation, error) {
	if err := m.checkTrained(); err != nil {
		return nil, err
	}
	defer pipeline.StartSpan(ctx, "explain-batch")()
	if len(vectors) != len(claims) {
		return nil, fmt.Errorf("core: %w: %d vectors vs %d claims", ErrBadInput, len(vectors), len(claims))
	}
	out := make([]*Explanation, len(vectors))
	var mu sync.Mutex
	errIdx, errVal := -1, error(nil)
	if err := parallel.ForContext(ctx, workers, len(vectors), 0, func(start, end int) {
		for i := start; i < end; i++ {
			ex, err := m.Explain(vectors[i], claims[i], topK)
			if err != nil {
				mu.Lock()
				if errIdx == -1 || i < errIdx {
					errIdx, errVal = i, err
				}
				mu.Unlock()
				continue
			}
			out[i] = ex
		}
	}); err != nil {
		return nil, fmt.Errorf("core: explain batch: %w", pipeline.Canceled(err))
	}
	if errVal != nil {
		return nil, fmt.Errorf("core: explain batch row %d: %w", errIdx, errVal)
	}
	return out, nil
}

// Hash returns a stable hex digest of the model's serialized form
// (SHA-256 over Save's output, which is deterministic: struct fields in
// declaration order, map keys sorted by encoding/json). Two models with
// the same digest produce identical verdicts for every input, which is
// what lets the audit ledger stamp each record with the model that
// decided it and `auditq replay` refuse a mismatched model file.
func (m *Model) Hash() (string, error) {
	h := sha256.New()
	if err := m.Save(h); err != nil {
		return "", fmt.Errorf("core: hash model: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}
