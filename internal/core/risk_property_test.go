package core

import (
	"testing"
	"testing/quick"

	"polygraph/internal/browser"
	"polygraph/internal/ua"
)

// Property tests over Algorithm 1's risk factor, using the package
// fixture model.

func TestRiskFactorBounds(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 40)
	oracle := browser.NewOracle()
	_ = oracle
	releases := ua.Universe(114)
	f := func(fpIdx, claimIdx uint16) bool {
		fpRel := releases[int(fpIdx)%len(releases)]
		claimRel := releases[int(claimIdx)%len(releases)]
		vec := ext.Extract(browser.Profile{Release: fpRel, OS: ua.Windows10})
		res, err := m.Score(vec, claimRel)
		if err != nil {
			return false
		}
		if res.RiskFactor < 0 || res.RiskFactor > ua.MaxDistance {
			return false
		}
		// Matched implies zero risk (guard disabled on this fixture).
		if res.Matched && res.RiskFactor != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRiskFactorDeterministic(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 40)
	vec := ext.Extract(browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10})
	claim := ua.Release{Vendor: ua.Firefox, Version: 101}
	a, err := m.Score(vec, claim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		b, err := m.Score(vec, claim)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatal("scoring not deterministic")
		}
	}
}

// TestRiskFactorApproachMonotone: for claims of the same vendor as the
// predicted cluster's members, walking the claimed version toward the
// cluster's range never increases the risk factor.
func TestRiskFactorApproachMonotone(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 40)
	vec := ext.Extract(browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10})
	base, err := m.Score(vec, ua.Release{Vendor: ua.Chrome, Version: 112})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Matched {
		t.Fatal("fixture assumption broken: honest Chrome 112 mismatched")
	}
	prev := ua.MaxDistance + 1
	for v := 59; v <= 112; v++ {
		res, err := m.Score(vec, ua.Release{Vendor: ua.Chrome, Version: v})
		if err != nil {
			t.Fatal(err)
		}
		if res.RiskFactor > prev {
			t.Fatalf("risk rose from %d to %d approaching the cluster at Chrome %d",
				prev, res.RiskFactor, v)
		}
		prev = res.RiskFactor
	}
	if prev != 0 {
		t.Fatalf("risk at the cluster itself = %d", prev)
	}
}

// TestRiskFactorAgreesWithAlgorithm1 recomputes the risk factor from the
// cluster table directly and compares.
func TestRiskFactorAgreesWithAlgorithm1(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 40)
	releases := ua.Universe(114)
	f := func(fpIdx, claimIdx uint16) bool {
		fpRel := releases[int(fpIdx)%len(releases)]
		claim := releases[int(claimIdx)%len(releases)]
		vec := ext.Extract(browser.Profile{Release: fpRel, OS: ua.Windows10})
		res, err := m.Score(vec, claim)
		if err != nil {
			return false
		}
		members := m.ClusterUAs[res.Cluster]
		inCluster := false
		want := ua.MaxDistance
		for _, r := range members {
			if r == claim {
				inCluster = true
			}
			if d := ua.Distance(claim, r, m.VersionDivisor); d < want {
				want = d
			}
		}
		if inCluster {
			return res.Matched && res.RiskFactor == 0
		}
		return !res.Matched && res.RiskFactor == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
