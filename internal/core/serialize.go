package core

import (
	"encoding/json"
	"fmt"
	"io"

	"polygraph/internal/fingerprint"
	"polygraph/internal/kmeans"
	"polygraph/internal/matrix"
	"polygraph/internal/pca"
	"polygraph/internal/scaler"
	"polygraph/internal/ua"
)

// modelJSON is the stable on-disk schema. Training runs offline (paper
// §6.5); the serialized model is what the online scoring tier loads.
type modelJSON struct {
	Version        int                 `json:"version"`
	Features       []featureJSON       `json:"features"`
	ScalerMeans    []float64           `json:"scaler_means"`
	ScalerStds     []float64           `json:"scaler_stds"`
	ScalerSkip     []bool              `json:"scaler_skip,omitempty"`
	PCAMean        []float64           `json:"pca_mean,omitempty"`
	PCAComponents  [][]float64         `json:"pca_components,omitempty"`
	PCAVariances   []float64           `json:"pca_variances,omitempty"`
	Centroids      [][]float64         `json:"centroids"`
	ClusterUAs     map[string][]string `json:"cluster_uas"`
	Accuracy       float64             `json:"accuracy"`
	VersionDivisor int                 `json:"version_divisor"`
	TrainedRows    int                 `json:"trained_rows"`

	NoveltyThreshold float64 `json:"novelty_threshold,omitempty"`
}

type featureJSON struct {
	Kind  string `json:"kind"`
	Proto string `json:"proto"`
	Prop  string `json:"prop,omitempty"`
}

const modelSchemaVersion = 1

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	mj := modelJSON{
		Version:        modelSchemaVersion,
		ScalerMeans:    m.Scaler.Means,
		ScalerStds:     m.Scaler.Stds,
		ScalerSkip:     m.Scaler.Skip(),
		Accuracy:       m.Accuracy,
		VersionDivisor: m.VersionDivisor,
		TrainedRows:    m.TrainedRows,
	}
	for _, f := range m.Features {
		mj.Features = append(mj.Features, featureJSON{Kind: f.Kind.String(), Proto: f.Proto, Prop: f.Prop})
	}
	if m.PCA != nil {
		mj.PCAMean = m.PCA.Mean
		mj.PCAVariances = m.PCA.Variances
		k, d := m.PCA.Components.Dims()
		mj.PCAComponents = make([][]float64, k)
		for i := 0; i < k; i++ {
			mj.PCAComponents[i] = m.PCA.Components.Row(i)
		}
		_ = d
	}
	kr, _ := m.KMeans.Centroids.Dims()
	mj.Centroids = make([][]float64, kr)
	for i := 0; i < kr; i++ {
		mj.Centroids[i] = m.KMeans.Centroids.Row(i)
	}
	mj.NoveltyThreshold = m.NoveltyThreshold
	mj.ClusterUAs = map[string][]string{}
	for c, rels := range m.ClusterUAs {
		key := fmt.Sprintf("%d", c)
		for _, r := range rels {
			mj.ClusterUAs[key] = append(mj.ClusterUAs[key], r.String())
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&mj)
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	if mj.Version != modelSchemaVersion {
		return nil, fmt.Errorf("core: unsupported model schema version %d", mj.Version)
	}
	if len(mj.Features) == 0 || len(mj.Centroids) == 0 {
		return nil, fmt.Errorf("core: model missing features or centroids")
	}
	if len(mj.ScalerMeans) != len(mj.Features) || len(mj.ScalerStds) != len(mj.Features) {
		return nil, fmt.Errorf("core: scaler size mismatch")
	}

	m := &Model{
		Accuracy:       mj.Accuracy,
		VersionDivisor: mj.VersionDivisor,
		TrainedRows:    mj.TrainedRows,
	}
	for _, fj := range mj.Features {
		var f fingerprint.Feature
		switch fj.Kind {
		case fingerprint.DeviationBased.String():
			f = fingerprint.Deviation(fj.Proto)
		case fingerprint.TimeBased.String():
			f = fingerprint.Time(fj.Proto, fj.Prop)
		default:
			return nil, fmt.Errorf("core: unknown feature kind %q", fj.Kind)
		}
		m.Features = append(m.Features, f)
	}

	m.Scaler = &scaler.Standard{
		Means: mj.ScalerMeans,
		Stds:  mj.ScalerStds,
	}
	if err := m.Scaler.SetSkip(mj.ScalerSkip); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	if len(mj.PCAComponents) > 0 {
		if len(mj.PCAMean) != len(mj.Features) {
			return nil, fmt.Errorf("core: pca mean size mismatch")
		}
		comps := matrix.FromRows(mj.PCAComponents)
		_, d := comps.Dims()
		if d != len(mj.Features) {
			return nil, fmt.Errorf("core: pca component width mismatch")
		}
		m.PCA = &pca.PCA{
			Mean:       mj.PCAMean,
			Components: comps,
			Variances:  mj.PCAVariances,
			K:          len(mj.PCAComponents),
		}
	}

	cents := matrix.FromRows(mj.Centroids)
	kr, kd := cents.Dims()
	wantDim := len(mj.Features)
	if m.PCA != nil {
		wantDim = m.PCA.K
	}
	if kd != wantDim {
		return nil, fmt.Errorf("core: centroid width %d, want %d", kd, wantDim)
	}
	m.KMeans = &kmeans.Model{Centroids: cents, K: kr, Dim: kd}

	m.ClusterUAs = map[int][]ua.Release{}
	m.UACluster = map[ua.Release]int{}
	for key, names := range mj.ClusterUAs {
		var c int
		if _, err := fmt.Sscanf(key, "%d", &c); err != nil {
			return nil, fmt.Errorf("core: bad cluster key %q", key)
		}
		if c < 0 || c >= kr {
			return nil, fmt.Errorf("core: cluster %d out of range", c)
		}
		for _, name := range names {
			rel, err := ua.ParseName(name)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			m.ClusterUAs[c] = append(m.ClusterUAs[c], rel)
			m.UACluster[rel] = c
		}
	}
	m.NoveltyThreshold = mj.NoveltyThreshold
	if m.VersionDivisor <= 0 {
		m.VersionDivisor = ua.DefaultVersionDivisor
	}
	// Flatten for the scoring fast path once, at load time, so the
	// serving tier never pays the build on a request.
	m.plan.Store(buildScorePlan(m))
	return m, nil
}
