package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"polygraph/internal/browser"
	"polygraph/internal/ua"
)

// TestExplainVerdictMatchesScore pins the replay invariant: the verdict
// embedded in an explanation is exactly VerdictOf(Score) for the same
// inputs, for honest and lying sessions alike.
func TestExplainVerdictMatchesScore(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 60)
	cases := []struct {
		name    string
		profile ua.Release
		claim   ua.Release
	}{
		{"honest", ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112}},
		{"cross-vendor-lie", ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110}},
		{"version-lie", ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 60}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vec := ext.Extract(browser.Profile{Release: tc.profile, OS: ua.Windows10})
			res, err := m.Score(vec, tc.claim)
			if err != nil {
				t.Fatal(err)
			}
			ex, err := m.Explain(vec, tc.claim, 0)
			if err != nil {
				t.Fatal(err)
			}
			if ex.Verdict != VerdictOf(res) {
				t.Fatalf("explain verdict %+v != score verdict %+v", ex.Verdict, VerdictOf(res))
			}
			if got := ex.Verdict.Result(); got != res {
				t.Fatalf("Verdict.Result() = %+v, want %+v", got, res)
			}
			if !ex.ClaimParsed || ex.Claim != tc.claim.String() {
				t.Fatalf("claim fields: %+v", ex)
			}
		})
	}
}

func TestExplainDecomposition(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 60)
	vec := ext.Extract(browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10})
	ex, err := m.Explain(vec, ua.Release{Vendor: ua.Chrome, Version: 112}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Schema != ExplanationSchema {
		t.Fatalf("schema %d", ex.Schema)
	}
	if len(ex.TopFeatures) != 3 {
		t.Fatalf("topK=3 gave %d features", len(ex.TopFeatures))
	}
	for i := 1; i < len(ex.TopFeatures); i++ {
		if abs(ex.TopFeatures[i].Z) > abs(ex.TopFeatures[i-1].Z) {
			t.Fatalf("top features not sorted by |z|: %+v", ex.TopFeatures)
		}
	}
	if len(ex.Centroids) != m.KMeans.K {
		t.Fatalf("centroid list %d, want K=%d", len(ex.Centroids), m.KMeans.K)
	}
	if ex.Centroids[0].Cluster != ex.Verdict.Cluster {
		t.Fatalf("nearest centroid %d != verdict cluster %d", ex.Centroids[0].Cluster, ex.Verdict.Cluster)
	}
	for i := 1; i < len(ex.Centroids); i++ {
		if ex.Centroids[i].Distance < ex.Centroids[i-1].Distance {
			t.Fatal("centroids not sorted ascending")
		}
	}
	if len(ex.Components) == 0 || len(ex.Components) > 3 {
		t.Fatalf("components %d", len(ex.Components))
	}
	var shareSum float64
	for i, c := range ex.Components {
		if c.Share < 0 || c.Share > 1 {
			t.Fatalf("component share out of range: %+v", c)
		}
		if i > 0 && c.Share > ex.Components[i-1].Share {
			t.Fatal("components not sorted by share")
		}
		shareSum += c.Share
	}
	if shareSum > 1+1e-9 {
		t.Fatalf("component shares sum to %v > 1", shareSum)
	}
	if !ex.Frequent || ex.ClusterUAs == "" {
		t.Fatalf("honest fixture session should land in a frequent cluster: %+v", ex)
	}
	if ex.NearestClaim != nil {
		t.Fatalf("matched session should have no NearestClaim: %+v", ex.NearestClaim)
	}
}

// TestExplainNearestClaim pins that a same-vendor version lie names the
// cluster member whose Algorithm 1 distance set the risk factor.
func TestExplainNearestClaim(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 60)
	vec := ext.Extract(browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10})
	claim := ua.Release{Vendor: ua.Chrome, Version: 60}
	ex, err := m.Explain(vec, claim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Verdict.Matched {
		t.Skip("fixture clustered Chrome 60 with Chrome 112; lie not observable")
	}
	if ex.NearestClaim == nil {
		t.Fatal("mismatched parsed claim should carry NearestClaim")
	}
	if ex.NearestClaim.Distance != ex.Verdict.RiskFactor {
		t.Fatalf("nearest-claim distance %d != risk factor %d",
			ex.NearestClaim.Distance, ex.Verdict.RiskFactor)
	}
}

// TestExplainDeterministicJSON pins the stability the audit ledger
// depends on: two explanations of the same input marshal to identical
// bytes.
func TestExplainDeterministicJSON(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 60)
	vec := ext.Extract(browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10})
	claim := ua.Release{Vendor: ua.Firefox, Version: 110}
	a, err := m.Explain(vec, claim, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Explain(vec, claim, 0)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("explanations differ:\n%s\n%s", aj, bj)
	}
}

func TestExplainBatchMatchesSingle(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 60)
	releases := []ua.Release{
		{Vendor: ua.Chrome, Version: 112},
		{Vendor: ua.Firefox, Version: 110},
		{Vendor: ua.Edge, Version: 112},
		{Vendor: ua.Chrome, Version: 60},
	}
	var vectors [][]float64
	var claims []ua.Release
	for i, r := range releases {
		vectors = append(vectors, ext.Extract(browser.Profile{Release: r, OS: ua.Windows10}))
		// Make one of them a lie.
		claims = append(claims, releases[(i+1)%len(releases)])
	}
	batch, err := m.ExplainBatch(vectors, claims, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vectors {
		single, err := m.Explain(vectors[i], claims[i], 4)
		if err != nil {
			t.Fatal(err)
		}
		bj, _ := json.Marshal(batch[i])
		sj, _ := json.Marshal(single)
		if !bytes.Equal(bj, sj) {
			t.Fatalf("row %d batch != single:\n%s\n%s", i, bj, sj)
		}
	}
	if _, err := m.ExplainBatch(vectors, claims[:1], 4); err == nil {
		t.Fatal("mismatched lengths should error")
	}
}

func TestExplainStringUnparseable(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 60)
	vec := ext.Extract(browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10})
	const junk = "curl/7.81.0"
	res, err := m.ScoreString(vec, junk)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := m.ExplainString(vec, junk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ClaimParsed {
		t.Fatal("junk UA marked parsed")
	}
	if ex.Claim != junk {
		t.Fatalf("claim %q", ex.Claim)
	}
	if ex.Verdict != VerdictOf(res) {
		t.Fatalf("verdict %+v != %+v", ex.Verdict, VerdictOf(res))
	}
	if ex.NearestClaim != nil {
		t.Fatal("unparseable claim cannot have a nearest member")
	}

	// Parsed path through ExplainString must match Explain.
	good := ua.Release{Vendor: ua.Chrome, Version: 112}
	header := "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/112.0.0.0 Safari/537.36"
	fromString, err := m.ExplainString(vec, header, 0)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := m.Explain(vec, good, 0)
	if err != nil {
		t.Fatal(err)
	}
	fj, _ := json.Marshal(fromString)
	dj, _ := json.Marshal(direct)
	if !bytes.Equal(fj, dj) {
		t.Fatal("ExplainString(parsed) != Explain")
	}
}

func TestModelHashStable(t *testing.T) {
	m, _, _ := trainFixtureModel(t, 40)
	h1, err := m.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := m.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || len(h1) != 32 {
		t.Fatalf("hash unstable or wrong width: %q vs %q", h1, h2)
	}
	// Save → Load must preserve the hash (the property auditq replay
	// uses to pair a ledger with its model file).
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := loaded.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h1 {
		t.Fatalf("hash changed across save/load: %q vs %q", h3, h1)
	}
	// A different model must hash differently.
	other, _, _ := trainFixtureModel(t, 41)
	h4, err := other.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h4 == h1 {
		t.Fatal("distinct models share a hash")
	}
}
