//go:build !race

package core

// raceEnabled mirrors the race build tag so allocation-count pins can
// skip under -race: the detector makes sync.Pool drop items at random,
// which distorts AllocsPerRun without indicating a real regression.
const raceEnabled = false
