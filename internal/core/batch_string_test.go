package core

import (
	"context"
	"fmt"
	"testing"

	"polygraph/internal/browser"
	"polygraph/internal/ua"
)

// TestScoreStringBatchContextParity is the TCP coalescer's scoring
// contract: a batch scored through ScoreStringBatchContext must be
// bit-identical to the same rows scored one at a time through
// ScoreStringWith — including rows whose user-agent fails to parse
// (which fall back to the nearest-cluster verdict, not an error).
func TestScoreStringBatchContextParity(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 40)
	releases := []ua.Release{
		{Vendor: ua.Chrome, Version: 112},
		{Vendor: ua.Firefox, Version: 110},
		{Vendor: ua.Edge, Version: 105},
	}
	var vectors [][]float64
	var agents []string
	for i := 0; i < 64; i++ {
		rel := releases[i%len(releases)]
		vectors = append(vectors, ext.Extract(browser.Profile{Release: rel, OS: ua.Windows10}))
		switch i % 3 {
		case 0:
			agents = append(agents, ua.UserAgent(rel, ua.Windows10))
		case 1: // engine/claim mismatch
			agents = append(agents, ua.UserAgent(releases[(i+1)%len(releases)], ua.Windows10))
		default: // unparseable UA: predict-only path
			agents = append(agents, fmt.Sprintf("weird-bot/%d", i))
		}
	}

	for _, workers := range []int{0, 1, 4} {
		got, err := m.ScoreStringBatchContext(context.Background(), vectors, agents, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(vectors) {
			t.Fatalf("workers=%d: %d results for %d rows", workers, len(got), len(vectors))
		}
		for i := range vectors {
			want, err := m.ScoreString(vectors[i], agents[i])
			if err != nil {
				t.Fatalf("row %d serial: %v", i, err)
			}
			if got[i] != want {
				t.Fatalf("workers=%d row %d: batch %+v != serial %+v", workers, i, got[i], want)
			}
		}
	}
}

func TestScoreStringBatchContextValidation(t *testing.T) {
	m, _, ext := trainFixtureModel(t, 40)
	rel := ua.Release{Vendor: ua.Chrome, Version: 112}
	vec := ext.Extract(browser.Profile{Release: rel, OS: ua.Windows10})
	agent := ua.UserAgent(rel, ua.Windows10)

	if _, err := m.ScoreStringBatchContext(context.Background(), [][]float64{vec}, nil, 0); err == nil {
		t.Fatal("mismatched vectors/user-agents lengths accepted")
	}
	// A wrong-width row must surface as an error naming the lowest
	// offending index, not poison the other rows silently.
	bad := [][]float64{vec, {1, 2, 3}, {1, 2}}
	if _, err := m.ScoreStringBatchContext(context.Background(), bad, []string{agent, agent, agent}, 0); err == nil {
		t.Fatal("wrong-width row accepted")
	}
	out, err := m.ScoreStringBatchContext(context.Background(), nil, nil, 0)
	if err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}
