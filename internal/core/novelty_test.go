package core_test

import (
	"bytes"
	"testing"

	"polygraph/internal/browser"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/fingerprint"
	"polygraph/internal/fraud"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// noveltyFixture trains on realistic traffic with the guard enabled.
func noveltyFixture(t testing.TB) (*core.Model, *fingerprint.Extractor) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.Sessions = 20000
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := core.DefaultTrainConfig()
	tc.NoveltyGuard = true
	tc.Reference = core.ExtractorReference{Extractor: d.Extractor, OS: ua.Windows10}
	m, _, err := core.Train(d.Samples(), tc)
	if err != nil {
		t.Fatal(err)
	}
	if m.NoveltyThreshold <= 0 {
		t.Fatal("novelty guard not trained in")
	}
	return m, d.Extractor
}

func TestNoveltyGuardHonestTrafficClean(t *testing.T) {
	m, ext := noveltyFixture(t)
	// A spread of honest sessions: none may trip the guard (the
	// threshold clears every kept training row).
	for _, r := range []ua.Release{
		{Vendor: ua.Chrome, Version: 112}, {Vendor: ua.Chrome, Version: 95},
		{Vendor: ua.Firefox, Version: 110}, {Vendor: ua.Edge, Version: 105},
		{Vendor: ua.Firefox, Version: 95}, {Vendor: ua.Chrome, Version: 64},
	} {
		vec := ext.Extract(browser.Profile{Release: r, OS: ua.Windows10})
		res, err := m.Score(vec, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Novel || res.Flagged() {
			t.Fatalf("honest %s tripped the guard: %+v", r, res)
		}
	}
}

func TestNoveltyGuardCatchesClusterConsistentCategory1(t *testing.T) {
	m, ext := noveltyFixture(t)
	tool, _ := fraud.ToolByName("Linken Sphere-8.93")
	gen := rng.New(5)
	// Find the category-1 fingerprint's landing cluster, then claim a
	// user-agent FROM that cluster — the blind spot of the pure cluster
	// check.
	spoof := tool.Spoof(ua.Release{Vendor: ua.Chrome, Version: 110}, ua.Windows10, gen)
	vec := ext.Extract(spoof.Profile)
	cluster, err := m.PredictCluster(vec)
	if err != nil {
		t.Fatal(err)
	}
	members := m.ClusterUAs[cluster]
	if len(members) == 0 {
		t.Skip("category-1 fingerprint landed in a noise cluster; no cluster-consistent claim exists")
	}
	res, err := m.Score(vec, members[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Novel {
		t.Fatalf("alien fingerprint not novel (score %.3f, threshold %.3f)",
			res.NoveltyScore, m.NoveltyThreshold)
	}
	if !res.Flagged() || res.RiskFactor != ua.MaxDistance {
		t.Fatalf("cluster-consistent category-1 claim not flagged at max risk: %+v", res)
	}
}

func TestNoveltyGuardSurvivesSerialization(t *testing.T) {
	m, ext := noveltyFixture(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NoveltyThreshold != m.NoveltyThreshold {
		t.Fatal("guard lost in serialization")
	}
	// Scoring parity incl. novelty fields.
	tool, _ := fraud.ToolByName("ClonBrowser-4.6.6")
	spoof := tool.Spoof(ua.Release{Vendor: ua.Firefox, Version: 110}, ua.Windows10, rng.New(9))
	vec := ext.Extract(spoof.Profile)
	a, err := m.Score(vec, spoof.Claimed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Score(vec, spoof.Claimed)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("score mismatch after reload: %+v vs %+v", a, b)
	}
}

func TestNoveltyGuardOffByDefault(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.Sessions = 5000
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := core.Train(d.Samples(), core.DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NoveltyThreshold != 0 {
		t.Fatal("guard enabled without opt-in")
	}
}

func TestNoveltyGuardFlagRegimeUnchanged(t *testing.T) {
	// With the guard on, honest traffic's flag volume stays in the
	// calibrated regime: the guard adds only alien-surface flags.
	cfg := dataset.DefaultConfig()
	cfg.Sessions = 20000
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tcOff := core.DefaultTrainConfig()
	tcOff.Reference = core.ExtractorReference{Extractor: d.Extractor, OS: ua.Windows10}
	off, _, err := core.Train(d.Samples(), tcOff)
	if err != nil {
		t.Fatal(err)
	}
	tcOn := tcOff
	tcOn.NoveltyGuard = true
	on, _, err := core.Train(d.Samples(), tcOn)
	if err != nil {
		t.Fatal(err)
	}
	flagsOff, flagsOn := 0, 0
	for _, s := range d.Sessions {
		a, err := off.Score(s.Vector, s.Claimed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := on.Score(s.Vector, s.Claimed)
		if err != nil {
			t.Fatal(err)
		}
		if a.Flagged() {
			flagsOff++
		}
		if b.Flagged() {
			flagsOn++
		}
		if a.Flagged() && !b.Flagged() {
			t.Fatal("guard removed a flag")
		}
	}
	if flagsOn < flagsOff {
		t.Fatalf("guard reduced flags: %d vs %d", flagsOn, flagsOff)
	}
	// And it must not explode the flag count (the threshold clears all
	// kept training rows; only filtered-outlier-like sessions add).
	if flagsOn > flagsOff+int(0.003*float64(len(d.Sessions))) {
		t.Fatalf("guard added too many flags: %d vs %d", flagsOn, flagsOff)
	}
}
