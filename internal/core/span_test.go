package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"polygraph/internal/pipeline"
	"polygraph/internal/ua"
)

// spanSink is a local pipeline.SpanRecorder; core must not depend on
// internal/obs (obs depends on drift which depends on core).
type spanSink struct {
	mu    sync.Mutex
	names []string
}

func (s *spanSink) RecordSpan(name string, _ time.Time, _ time.Duration) {
	s.mu.Lock()
	s.names = append(s.names, name)
	s.mu.Unlock()
}

func TestScoreBatchContextEmitsSpan(t *testing.T) {
	m, _, _ := trainFixtureModel(t, 20)
	samples, _ := trainFixture(t, 20)
	vectors := make([][]float64, len(samples))
	claims := make([]ua.Release, len(samples))
	for i, s := range samples {
		vectors[i] = s.Vector
		claims[i] = s.UA
	}
	sink := &spanSink{}
	ctx := pipeline.WithSpanRecorder(context.Background(), sink)
	if _, err := m.ScoreBatchContext(ctx, vectors, claims, 2); err != nil {
		t.Fatal(err)
	}
	if len(sink.names) != 1 || sink.names[0] != "score-batch" {
		t.Fatalf("spans %v, want [score-batch]", sink.names)
	}
	// Without a recorder on the context, scoring must work identically.
	if _, err := m.ScoreBatchContext(context.Background(), vectors, claims, 2); err != nil {
		t.Fatal(err)
	}
}
