package pca

import (
	"math"
	"testing"

	"polygraph/internal/matrix"
	"polygraph/internal/rng"
)

// corrData builds a dataset where column 1 = 2*column 0 + noise and
// column 2 is independent small noise, so one strong principal component
// dominates.
func corrData(n int, seed uint64) *matrix.Dense {
	p := rng.New(seed)
	rows := make([][]float64, n)
	for i := range rows {
		base := p.NormFloat64() * 10
		rows[i] = []float64{
			base,
			2*base + p.NormFloat64()*0.1,
			p.NormFloat64() * 0.1,
		}
	}
	return matrix.FromRows(rows)
}

func TestFitErrors(t *testing.T) {
	m := corrData(10, 1)
	if _, err := Fit(matrix.NewDense(1, 3), 1); err == nil {
		t.Fatal("expected error for single row")
	}
	if _, err := Fit(m, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := Fit(m, 4); err == nil {
		t.Fatal("expected error for k>d")
	}
}

func TestExplainedVarianceDominantComponent(t *testing.T) {
	m := corrData(2000, 2)
	p, err := Fit(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	ratios := p.ExplainedVarianceRatio()
	if ratios[0] < 0.99 {
		t.Fatalf("dominant component explains %v, want >0.99", ratios[0])
	}
	sum := 0.0
	for _, r := range ratios {
		if r < 0 {
			t.Fatalf("negative variance ratio %v", r)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ratios sum to %v", sum)
	}
}

func TestCumulativeVarianceMonotone(t *testing.T) {
	m := corrData(500, 3)
	p, err := Fit(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	cum := p.CumulativeVariance()
	prev := 0.0
	for i, c := range cum {
		if c < prev-1e-12 {
			t.Fatalf("cumulative variance decreased at %d", i)
		}
		prev = c
	}
	if math.Abs(cum[len(cum)-1]-1) > 1e-9 {
		t.Fatalf("final cumulative variance = %v", cum[len(cum)-1])
	}
}

func TestComponentsForVariance(t *testing.T) {
	m := corrData(1000, 4)
	p, err := Fit(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ComponentsForVariance(0.5); got != 1 {
		t.Fatalf("50%% needs %d components, want 1", got)
	}
	if got := p.ComponentsForVariance(1.0); got > 3 {
		t.Fatalf("100%% needs %d components", got)
	}
	if got := p.ComponentsForVariance(0); got != 1 {
		t.Fatalf("target 0 => %d", got)
	}
}

func TestTransformShape(t *testing.T) {
	m := corrData(100, 5)
	p, err := Fit(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := p.Transform(m)
	if err != nil {
		t.Fatal(err)
	}
	r, c := proj.Dims()
	if r != 100 || c != 2 {
		t.Fatalf("projection dims %dx%d", r, c)
	}
	if _, err := p.Transform(matrix.NewDense(5, 4)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestTransformVecMatchesMatrix(t *testing.T) {
	m := corrData(50, 6)
	p, err := Fit(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := p.Transform(m)
	for i := 0; i < 50; i++ {
		v, err := p.TransformVec(m.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		for j := range v {
			if math.Abs(v[j]-full.At(i, j)) > 1e-9 {
				t.Fatalf("row %d comp %d: %v vs %v", i, j, v[j], full.At(i, j))
			}
		}
	}
}

func TestTransformVecIntoErrors(t *testing.T) {
	m := corrData(10, 7)
	p, _ := Fit(m, 2)
	if err := p.TransformVecInto(make([]float64, 2), make([]float64, 2)); err == nil {
		t.Fatal("expected error for wrong src width")
	}
	if err := p.TransformVecInto(make([]float64, 3), make([]float64, 3)); err == nil {
		t.Fatal("expected error for wrong dst width")
	}
}

func TestProjectionPreservesVariance(t *testing.T) {
	// With k = d the projection is a rotation: total variance is
	// preserved.
	m := corrData(500, 8)
	p, err := Fit(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := p.Transform(m)
	if err != nil {
		t.Fatal(err)
	}
	origVar, projVar := 0.0, 0.0
	for _, s := range m.ColStds() {
		origVar += s * s
	}
	for _, s := range proj.ColStds() {
		projVar += s * s
	}
	if math.Abs(origVar-projVar) > 1e-6*origVar {
		t.Fatalf("variance not preserved: %v vs %v", origVar, projVar)
	}
}

func TestInverseRoundtripFullRank(t *testing.T) {
	m := corrData(200, 9)
	p, err := Fit(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		row := m.Row(i)
		z, err := p.TransformVec(row)
		if err != nil {
			t.Fatal(err)
		}
		back, err := p.InverseVec(z)
		if err != nil {
			t.Fatal(err)
		}
		for j := range row {
			if math.Abs(back[j]-row[j]) > 1e-8*(1+math.Abs(row[j])) {
				t.Fatalf("row %d feature %d: %v vs %v", i, j, back[j], row[j])
			}
		}
	}
}

func TestInverseVecErrors(t *testing.T) {
	m := corrData(10, 10)
	p, _ := Fit(m, 2)
	if _, err := p.InverseVec([]float64{1}); err == nil {
		t.Fatal("expected error for wrong width")
	}
}

func TestReconstructionErrorDecreasesWithK(t *testing.T) {
	m := corrData(300, 11)
	var prev float64 = math.Inf(1)
	for k := 1; k <= 3; k++ {
		p, err := Fit(m, k)
		if err != nil {
			t.Fatal(err)
		}
		re, err := p.ReconstructionError(m)
		if err != nil {
			t.Fatal(err)
		}
		if re > prev+1e-9 {
			t.Fatalf("reconstruction error rose from %v to %v at k=%d", prev, re, k)
		}
		prev = re
	}
	if prev > 1e-9 {
		t.Fatalf("full-rank reconstruction error = %v, want ~0", prev)
	}
}

func TestOrthonormality(t *testing.T) {
	m := corrData(500, 12)
	p, err := Fit(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dev := p.Orthonormality(); dev > 1e-8 {
		t.Fatalf("component basis deviates from orthonormal by %v", dev)
	}
}

func BenchmarkFit28Features(b *testing.B) {
	p := rng.New(13)
	rows := make([][]float64, 4096)
	for i := range rows {
		row := make([]float64, 28)
		for j := range row {
			row[j] = p.NormFloat64()
		}
		rows[i] = row
	}
	m := matrix.FromRows(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(m, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformVecInto(b *testing.B) {
	m := corrData(1000, 14)
	p, err := Fit(m, 2)
	if err != nil {
		b.Fatal(err)
	}
	src := m.Row(0)
	dst := make([]float64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.TransformVecInto(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}
