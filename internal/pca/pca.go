// Package pca implements principal component analysis for the Browser
// Polygraph feature-selection stage (paper §6.4.2): the 28 scaled features
// are projected onto the leading principal components, with the component
// count chosen from the cumulative explained-variance curve (Figure 2; the
// paper keeps 7 components covering >98.5% of variance).
//
// The implementation diagonalizes the sample covariance matrix with the
// Jacobi method from internal/matrix; our matrices are small enough
// (≤ a few hundred columns) that this is simpler and more robust than an
// iterative SVD.
package pca

import (
	"context"
	"fmt"
	"math"

	"polygraph/internal/matrix"
	"polygraph/internal/parallel"
)

// PCA is a fitted principal component analysis. Construct with Fit.
type PCA struct {
	// Mean is the per-feature mean removed before projection.
	Mean []float64
	// Components is a k×d matrix whose rows are the leading principal
	// axes (unit vectors), sorted by decreasing explained variance.
	Components *matrix.Dense
	// Variances holds the eigenvalues (explained variance) for every
	// component of the fitted space, not only the k kept ones, so the
	// cumulative-variance curve of Figure 2 can always be rendered.
	Variances []float64
	// K is the number of components kept for projection.
	K int
}

// Fit computes a PCA of m and keeps k components. k must be in [1, d].
// Rows of m are observations.
func Fit(m *matrix.Dense, k int) (*PCA, error) {
	return FitContext(context.Background(), m, k)
}

// FitContext is Fit under a context. The covariance product and the
// Jacobi eigendecomposition are indivisible dense kernels, so the
// context is checked between them rather than inside; our matrices are
// at most a few hundred columns wide, which bounds each kernel to
// milliseconds.
func FitContext(ctx context.Context, m *matrix.Dense, k int) (*PCA, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r, d := m.Dims()
	if r < 2 {
		return nil, fmt.Errorf("pca: need at least 2 rows, have %d", r)
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("pca: k=%d out of range [1,%d]", k, d)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cov := m.Covariance()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eig, err := matrix.SymEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("pca: eigendecomposition: %w", err)
	}
	comps := matrix.NewDense(k, d)
	for c := 0; c < k; c++ {
		for row := 0; row < d; row++ {
			comps.Set(c, row, eig.Vectors.At(row, c))
		}
	}
	vars := make([]float64, d)
	for i, v := range eig.Values {
		if v < 0 {
			// Tiny negative eigenvalues are numerical noise on
			// rank-deficient covariance matrices.
			v = 0
		}
		vars[i] = v
	}
	return &PCA{
		Mean:       m.ColMeans(),
		Components: comps,
		Variances:  vars,
		K:          k,
	}, nil
}

// ExplainedVarianceRatio returns each fitted component's share of total
// variance (length = original dimension d).
func (p *PCA) ExplainedVarianceRatio() []float64 {
	total := 0.0
	for _, v := range p.Variances {
		total += v
	}
	out := make([]float64, len(p.Variances))
	if total == 0 {
		return out
	}
	for i, v := range p.Variances {
		out[i] = v / total
	}
	return out
}

// CumulativeVariance returns the running sum of ExplainedVarianceRatio —
// exactly the curve of the paper's Figure 2.
func (p *PCA) CumulativeVariance() []float64 {
	ratios := p.ExplainedVarianceRatio()
	cum := 0.0
	out := make([]float64, len(ratios))
	for i, r := range ratios {
		cum += r
		out[i] = cum
	}
	return out
}

// ComponentsForVariance returns the smallest number of components whose
// cumulative explained variance reaches target (0 < target ≤ 1). This is
// the automated version of the paper's "seven components capture over
// 98.5%" reading of Figure 2.
func (p *PCA) ComponentsForVariance(target float64) int {
	if target <= 0 {
		return 1
	}
	cum := p.CumulativeVariance()
	for i, c := range cum {
		if c >= target-1e-12 {
			return i + 1
		}
	}
	return len(cum)
}

// Transform projects every row of m onto the kept components, returning an
// r×k matrix. Rows fan out over the worker pool; each projection is
// independent, so pool size never changes the output.
func (p *PCA) Transform(m *matrix.Dense) (*matrix.Dense, error) {
	return p.TransformWorkers(m, 0)
}

// TransformWorkers is Transform with an explicit pool size (0 =
// GOMAXPROCS, 1 = serial).
func (p *PCA) TransformWorkers(m *matrix.Dense, workers int) (*matrix.Dense, error) {
	return p.TransformContext(context.Background(), m, workers)
}

// TransformContext is TransformWorkers with cooperative cancellation at
// chunk boundaries; projections are row-independent, so a completed
// transform is identical for every pool size and context.
func (p *PCA) TransformContext(ctx context.Context, m *matrix.Dense, workers int) (*matrix.Dense, error) {
	r, d := m.Dims()
	if d != len(p.Mean) {
		return nil, fmt.Errorf("pca: transform on %d features, fitted on %d", d, len(p.Mean))
	}
	out := matrix.NewDense(r, p.K)
	// Adaptive dispatch: one projection is ~(K+1)·d flops, so small
	// batches run serially rather than paying pool startup.
	plan := parallel.PlanFor(workers, r, 40+2*float64((p.K+1)*d))
	if err := parallel.ForContext(ctx, plan.Workers, r, plan.Chunk, func(start, end int) {
		buf := make([]float64, d)
		for i := start; i < end; i++ {
			row := m.RawRow(i)
			for j, v := range row {
				buf[j] = v - p.Mean[j]
			}
			p.projectInto(buf, out.RawRow(i))
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformVec projects a single observation, returning a length-k vector.
func (p *PCA) TransformVec(v []float64) ([]float64, error) {
	out := make([]float64, p.K)
	if err := p.TransformVecInto(v, out); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformVecInto projects src into dst (length K) without allocating,
// for the online scoring path.
func (p *PCA) TransformVecInto(src, dst []float64) error {
	if len(src) != len(p.Mean) {
		return fmt.Errorf("pca: vector has %d features, fitted on %d", len(src), len(p.Mean))
	}
	if len(dst) != p.K {
		return fmt.Errorf("pca: destination has %d entries, want %d", len(dst), p.K)
	}
	// Centering is folded into the dot product to avoid a temp slice:
	// (x-μ)·w = x·w - μ·w. Precomputing μ·w would save work but keep a
	// cache on PCA; the vectors here are ≤ a few hundred wide.
	for c := 0; c < p.K; c++ {
		comp := p.Components.RawRow(c)
		s := 0.0
		for j, w := range comp {
			s += (src[j] - p.Mean[j]) * w
		}
		dst[c] = s
	}
	return nil
}

func (p *PCA) projectInto(centered, dst []float64) {
	for c := 0; c < p.K; c++ {
		comp := p.Components.RawRow(c)
		s := 0.0
		for j, w := range comp {
			s += centered[j] * w
		}
		dst[c] = s
	}
}

// InverseVec maps a k-dimensional projection back to the original feature
// space (lossy if k < d): x ≈ μ + Σ z_c · w_c.
func (p *PCA) InverseVec(z []float64) ([]float64, error) {
	if len(z) != p.K {
		return nil, fmt.Errorf("pca: inverse on %d entries, want %d", len(z), p.K)
	}
	out := append([]float64(nil), p.Mean...)
	for c := 0; c < p.K; c++ {
		comp := p.Components.RawRow(c)
		for j, w := range comp {
			out[j] += z[c] * w
		}
	}
	return out, nil
}

// ReconstructionError returns the mean squared reconstruction error of m
// under the kept components, a diagnostic for choosing K.
func (p *PCA) ReconstructionError(m *matrix.Dense) (float64, error) {
	proj, err := p.Transform(m)
	if err != nil {
		return 0, err
	}
	r, d := m.Dims()
	if r == 0 {
		return 0, nil
	}
	total := 0.0
	for i := 0; i < r; i++ {
		back, err := p.InverseVec(proj.RawRow(i))
		if err != nil {
			return 0, err
		}
		row := m.RawRow(i)
		for j := 0; j < d; j++ {
			diff := row[j] - back[j]
			total += diff * diff
		}
	}
	return total / float64(r), nil
}

// Orthonormality returns the maximum deviation of the kept components from
// an orthonormal system; exported for model-validation checks.
func (p *PCA) Orthonormality() float64 {
	worst := 0.0
	for a := 0; a < p.K; a++ {
		ra := p.Components.RawRow(a)
		for b := a; b < p.K; b++ {
			rb := p.Components.RawRow(b)
			dot := 0.0
			for j := range ra {
				dot += ra[j] * rb[j]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if dev := math.Abs(dot - want); dev > worst {
				worst = dev
			}
		}
	}
	return worst
}
