package fleet

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"

	"polygraph/internal/obs"
	"polygraph/internal/slo"
)

// SLORollup aggregates per-replica SLIs into one fleet-level burn-rate
// engine: each Collect scrapes every registered member's /metrics
// exposition (through the Member override or HTTP), extracts the
// spec's good/total counters per replica, sums them, and feeds the sum
// to the engine as one tick. The fleet therefore burns budget on the
// union of replica traffic — a single bad replica moves the fleet SLI
// in proportion to its share of requests, which is the view a pager
// should alert on (per-replica engines still fire their own alerts).
//
// Unreachable members are skipped for that tick (their last-seen
// counters simply stop contributing; the engine clamps the resulting
// negative deltas to zero), so a killed replica degrades the rollup
// gracefully instead of wedging it.
type SLORollup struct {
	b      *Balancer
	eng    *slo.Engine
	logger *slog.Logger
}

// NewSLORollup builds the rollup engine over the balancer's members.
// intervalS is the tick cadence in seconds the burn windows assume
// (0 = 10); the caller owns the tick loop (Run or explicit Collect).
func NewSLORollup(b *Balancer, spec *slo.Spec, intervalS int, logger *slog.Logger) (*SLORollup, error) {
	if b == nil {
		return nil, fmt.Errorf("fleet: SLORollup needs a balancer")
	}
	eng, err := slo.NewEngine(slo.Config{
		Spec:      spec,
		IntervalS: intervalS,
		Scope:     "fleet",
		Logger:    logger,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: slo rollup: %w", err)
	}
	return &SLORollup{b: b, eng: eng, logger: logger}, nil
}

// Engine exposes the fleet-level burn-rate engine (status page, JSON).
func (r *SLORollup) Engine() *slo.Engine { return r.eng }

// Collect performs one rollup tick: scrape every member, sum the
// extracted counters, tick the engine. Returns the number of members
// scraped successfully; an error only when no member was reachable
// (the engine is still ticked so windows keep rolling).
func (r *SLORollup) Collect(ctx context.Context) (int, error) {
	spec := r.eng.Spec()
	sum := make([]slo.Counters, len(spec.Objectives))
	ok := 0
	for _, m := range r.b.Members() {
		text, err := m.FetchMetrics(ctx, r.b.Client())
		if err != nil {
			if r.logger != nil {
				r.logger.Debug("slo rollup: member scrape failed", "replica", m.Name, "err", err.Error())
			}
			continue
		}
		sum = slo.SumCounters(sum, spec.Extract(obs.ParseExpositionString(text)))
		ok++
	}
	r.eng.TickCounters(sum)
	if ok == 0 {
		return 0, fmt.Errorf("fleet: slo rollup: no member reachable")
	}
	return ok, nil
}

// Run ticks the rollup on a wall-clock interval until ctx is done.
func (r *SLORollup) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Collect(ctx)
		}
	}
}

// AttachSLO includes a rollup's fleet-level families in the balancer's
// WriteMetrics exposition under the polygraph_fleet_slo_* prefix —
// distinct from the per-replica polygraph_slo_* names so a fleet dump
// that concatenates a replica exposition with the balancer's stays
// free of duplicate families.
func (b *Balancer) AttachSLO(r *SLORollup) { b.sloRollup.Store(r) }

// SLO returns the attached rollup (nil when none).
func (b *Balancer) SLO() *SLORollup { return b.sloRollup.Load() }

func (b *Balancer) writeSLOMetrics(w io.Writer) {
	if r := b.sloRollup.Load(); r != nil {
		r.eng.WriteMetricsAs(w, "polygraph_fleet_slo")
	}
}
