package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"polygraph/internal/bundle"
)

// Fleet-wide support-bundle capture: the balancer knows every replica —
// including ones already ejected or drained — so it is the natural
// place to enumerate capture targets. The adapter reuses the member
// overrides the health/stats machinery already has, which lets an
// in-process rig snapshot the /metrics and /v1/stats of a replica whose
// listener is gone; everything else falls back to HTTP against BaseURL
// and surfaces as recorded collector errors when the replica is dead.

// BundleTarget adapts one member for bundle.Capture.
func (m Member) BundleTarget(client *http.Client) bundle.Target {
	t := bundle.Target{Name: m.Name, BaseURL: m.BaseURL}
	if m.Stats == nil && m.Metrics == nil {
		return t // plain HTTP member: let capture fetch directly
	}
	t.Fetch = func(ctx context.Context, path string) ([]byte, error) {
		switch {
		case path == "/metrics" && m.Metrics != nil:
			text, err := m.Metrics(ctx)
			if err != nil {
				return nil, err
			}
			return []byte(text), nil
		case path == "/v1/stats" && m.Stats != nil:
			stats, err := m.Stats(ctx)
			if err != nil {
				return nil, err
			}
			return json.Marshal(stats)
		case m.BaseURL == "":
			return nil, fmt.Errorf("no base URL for %s", path)
		default:
			return bundle.HTTPFetch(ctx, client, m.BaseURL+path)
		}
	}
	return t
}

// BundleTargets enumerates every member of the balancer as a capture
// target, in membership order — the input for a fleet-wide
// bundle.Capture.
func (b *Balancer) BundleTargets() []bundle.Target {
	members := b.Members()
	out := make([]bundle.Target, len(members))
	for i, m := range members {
		out[i] = m.BundleTarget(b.client)
	}
	return out
}
