package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"polygraph/internal/core"
	"polygraph/internal/obs"
)

// Controller is the fleet's control plane: it owns model distribution.
// The fleet trains once and distributes, rather than letting each
// replica train itself — identical inputs would in principle produce
// identical models, but "in principle" is not an audit guarantee;
// hash-verified distribution is. Every replica must read back the same
// core.Model.Hash before it serves traffic, which makes cross-replica
// verdicts comparable and the merged audit ledger coherent.
type Controller struct {
	// Client is the HTTP client for admin calls (nil builds one with
	// PushTimeout).
	Client *http.Client
	// PushTimeout bounds each per-replica push+verify (default 30s; a
	// model upload is tens of kilobytes, but CI boxes are slow).
	PushTimeout time.Duration
	// Logger receives distribution events; nil discards.
	Logger *slog.Logger
}

// PushResult records one replica's distribution outcome.
type PushResult struct {
	Name     string `json:"name"`
	BaseURL  string `json:"base_url"`
	Hash     string `json:"hash,omitempty"` // hash the replica reported back
	Admitted bool   `json:"admitted"`
	Error    string `json:"error,omitempty"`
}

func (c *Controller) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return &http.Client{Timeout: c.pushTimeout()}
}

func (c *Controller) pushTimeout() time.Duration {
	if c.PushTimeout > 0 {
		return c.PushTimeout
	}
	return 30 * time.Second
}

func (c *Controller) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return obs.NewLogger(nil, false)
}

// Distribute serializes m once, pushes it to every registered replica's
// admin endpoint, reads the deployment back, and admits exactly the
// replicas whose reported hash matches the local hash. Mismatching or
// unreachable replicas are refused/left out of rotation and reported in
// their PushResult. It returns an error when no replica was admitted —
// a fleet serving zero replicas is an outage, while a partial admission
// is degraded capacity the balancer can work with.
func (c *Controller) Distribute(ctx context.Context, b *Balancer, m *core.Model) ([]PushResult, error) {
	wantHash, err := m.Hash()
	if err != nil {
		return nil, fmt.Errorf("fleet: hash model: %w", err)
	}
	if expect := b.ExpectedHash(); expect != "" && expect != wantHash {
		return nil, fmt.Errorf("fleet: balancer is pinned to hash %s, refusing to distribute %s", expect, wantHash)
	}
	var blob bytes.Buffer
	if err := m.Save(&blob); err != nil {
		return nil, fmt.Errorf("fleet: serialize model: %w", err)
	}
	logger := c.logger()
	logger.Info("fleet: distributing model", "model_hash", wantHash,
		"bytes", blob.Len(), "replicas", len(b.Members()))

	results := make([]PushResult, 0, len(b.Members()))
	admitted := 0
	for _, mem := range b.Members() {
		res := c.pushOne(ctx, mem, blob.Bytes(), wantHash)
		if res.Admitted {
			if err := b.Admit(mem.Name, res.Hash); err != nil {
				res.Admitted = false
				res.Error = err.Error()
			} else {
				admitted++
			}
		} else {
			if res.Hash != "" && res.Hash != wantHash {
				b.Refuse(mem.Name, res.Hash)
			}
			logger.Warn("fleet: replica not admitted",
				"replica", mem.Name, "error", res.Error)
		}
		results = append(results, res)
	}
	if admitted == 0 {
		return results, errors.New("fleet: distribution admitted zero replicas")
	}
	logger.Info("fleet: distribution complete", "admitted", admitted, "total", len(results))
	return results, nil
}

// pushOne uploads the serialized model to one replica and verifies the
// deployment by reading the admin view back. Both the swap response and
// the follow-up GET must report wantHash: the POST response proves the
// upload deserialized to the right bytes, the GET proves the swap
// actually landed in the serving path.
func (c *Controller) pushOne(ctx context.Context, mem Member, blob []byte, wantHash string) PushResult {
	res := PushResult{Name: mem.Name, BaseURL: mem.BaseURL}
	ctx, cancel := context.WithTimeout(ctx, c.pushTimeout())
	defer cancel()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, mem.BaseURL+AdminModelPath, bytes.NewReader(blob))
	if err != nil {
		res.Error = err.Error()
		return res
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client().Do(req)
	if err != nil {
		res.Error = fmt.Sprintf("push: %v", err)
		return res
	}
	func() {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			err = fmt.Errorf("push: replica returned %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
			return
		}
		var info ModelInfo
		if derr := json.NewDecoder(resp.Body).Decode(&info); derr != nil {
			err = fmt.Errorf("push: decode response: %w", derr)
			return
		}
		res.Hash = info.Hash
	}()
	if err != nil {
		res.Error = err.Error()
		return res
	}
	if res.Hash != wantHash {
		res.Error = fmt.Sprintf("push: replica deployed hash %s, want %s", res.Hash, wantHash)
		return res
	}

	// Independent read-back through the serving path.
	info, err := FetchModelInfo(ctx, c.client(), mem.BaseURL)
	if err != nil {
		res.Error = fmt.Sprintf("verify: %v", err)
		return res
	}
	if info.Hash != wantHash {
		res.Hash = info.Hash
		res.Error = fmt.Sprintf("verify: replica serves hash %s, want %s", info.Hash, wantHash)
		return res
	}
	res.Admitted = true
	return res
}

// Verify admits replicas that already serve wantHash without pushing —
// the admission path for a balancer fronting replicas that loaded the
// model themselves (e.g. from a shared model file). Replicas reporting
// a different hash are refused; unreachable ones stay pending.
func (c *Controller) Verify(ctx context.Context, b *Balancer, wantHash string) ([]PushResult, error) {
	results := make([]PushResult, 0, len(b.Members()))
	admitted := 0
	for _, mem := range b.Members() {
		res := PushResult{Name: mem.Name, BaseURL: mem.BaseURL}
		vctx, cancel := context.WithTimeout(ctx, c.pushTimeout())
		var (
			hash string
			err  error
		)
		if mem.Probe != nil {
			hash, err = mem.Probe(vctx)
		} else {
			var info ModelInfo
			info, err = FetchModelInfo(vctx, c.client(), mem.BaseURL)
			hash = info.Hash
		}
		cancel()
		switch {
		case err != nil:
			res.Error = err.Error()
		case hash != wantHash:
			res.Hash = hash
			res.Error = fmt.Sprintf("replica serves hash %s, want %s", hash, wantHash)
			b.Refuse(mem.Name, hash)
		default:
			res.Hash = hash
			if aerr := b.Admit(mem.Name, hash); aerr != nil {
				res.Error = aerr.Error()
			} else {
				res.Admitted = true
				admitted++
			}
		}
		results = append(results, res)
	}
	if admitted == 0 {
		return results, errors.New("fleet: verification admitted zero replicas")
	}
	return results, nil
}
