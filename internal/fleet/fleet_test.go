package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polygraph/internal/collect"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/obs"
	"polygraph/internal/ua"
)

var (
	modelOnce sync.Once
	testM     *core.Model
	testMHash string
)

// fleetModel trains one small model per test binary; fleet tests only
// need a valid serializable model, not an accurate one.
func fleetModel(t testing.TB) (*core.Model, string) {
	t.Helper()
	modelOnce.Do(func() {
		cfg := dataset.DefaultConfig()
		cfg.Sessions = 4000
		d, err := dataset.Generate(cfg)
		if err != nil {
			panic(err)
		}
		tc := core.DefaultTrainConfig()
		tc.Reference = core.ExtractorReference{Extractor: d.Extractor, OS: ua.Windows10}
		m, _, err := core.Train(d.Samples(), tc)
		if err != nil {
			panic(err)
		}
		h, err := m.Hash()
		if err != nil {
			panic(err)
		}
		testM, testMHash = m, h
	})
	return testM, testMHash
}

// fakeReplica is a minimal HTTP replica: /healthz plus the admin model
// endpoint. lieHash, when set, is reported instead of the hash of the
// actually deployed model — the corruption Distribute must refuse.
type fakeReplica struct {
	srv     *httptest.Server
	mu      sync.Mutex
	hash    string
	lieHash string
	healthy atomic.Bool
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !f.healthy.Load() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc(AdminModelPath, func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			m, err := core.Load(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			h, err := m.Hash()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			f.mu.Lock()
			f.hash = h
			f.mu.Unlock()
			json.NewEncoder(w).Encode(ModelInfo{Hash: f.reportedHash()})
		case http.MethodGet:
			h := f.reportedHash()
			if h == "" {
				http.Error(w, "no model", http.StatusNotFound)
				return
			}
			json.NewEncoder(w).Encode(ModelInfo{Hash: h})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) reportedHash() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.lieHash != "" {
		return f.lieHash
	}
	return f.hash
}

func TestDistributeAdmitsOnlyHashMatches(t *testing.T) {
	m, wantHash := fleetModel(t)
	good1, good2, liar := newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)
	liar.lieHash = "deadbeef"

	b, err := NewBalancer(Config{Seed: 1, ExpectHash: wantHash},
		Member{Name: "r0", BaseURL: good1.srv.URL},
		Member{Name: "r1", BaseURL: good2.srv.URL},
		Member{Name: "r2", BaseURL: liar.srv.URL},
	)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &Controller{}
	results, err := ctrl.Distribute(context.Background(), b, m)
	if err != nil {
		t.Fatalf("distribute: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	admitted := 0
	for _, r := range results {
		if r.Admitted {
			admitted++
			if r.Hash != wantHash {
				t.Errorf("%s admitted with hash %s, want %s", r.Name, r.Hash, wantHash)
			}
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d replicas, want 2: %+v", admitted, results)
	}
	if h := b.Healthy(); len(h) != 2 {
		t.Fatalf("healthy set %v, want 2 members", h)
	}
	for _, st := range b.Snapshot() {
		if st.Name == "r2" && st.State != "refused" {
			t.Fatalf("lying replica in state %q, want refused", st.State)
		}
	}
}

func TestDistributeAllMismatchedFails(t *testing.T) {
	m, _ := fleetModel(t)
	liar := newFakeReplica(t)
	liar.lieHash = "deadbeef"
	b, err := NewBalancer(Config{Seed: 1}, Member{Name: "r0", BaseURL: liar.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Controller{}).Distribute(context.Background(), b, m); err == nil {
		t.Fatal("distribution with zero admissible replicas succeeded")
	}
	if len(b.Healthy()) != 0 {
		t.Fatal("mismatched replica entered rotation")
	}
}

func TestVerifyAdmitsPreloadedReplicas(t *testing.T) {
	m, wantHash := fleetModel(t)
	good, stale := newFakeReplica(t), newFakeReplica(t)
	// good already serves the model; stale serves a different hash.
	if _, err := (&Controller{}).Distribute(context.Background(), mustBalancer(t,
		Config{Seed: 9}, Member{Name: "tmp", BaseURL: good.srv.URL}), m); err != nil {
		t.Fatal(err)
	}
	stale.lieHash = "0ld"

	b := mustBalancer(t, Config{Seed: 2, ExpectHash: wantHash},
		Member{Name: "r0", BaseURL: good.srv.URL},
		Member{Name: "r1", BaseURL: stale.srv.URL})
	results, err := (&Controller{}).Verify(context.Background(), b, wantHash)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !results[0].Admitted || results[1].Admitted {
		t.Fatalf("unexpected admissions: %+v", results)
	}
}

func mustBalancer(t *testing.T, cfg Config, members ...Member) *Balancer {
	t.Helper()
	b, err := NewBalancer(cfg, members...)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func staticProbe(hash string, up *atomic.Bool) func(context.Context) (string, error) {
	return func(context.Context) (string, error) {
		if up != nil && !up.Load() {
			return "", errors.New("probe: down")
		}
		return hash, nil
	}
}

func TestPickSpreadsAndFinishEjectsOnDown(t *testing.T) {
	b := mustBalancer(t, Config{Seed: 3},
		Member{Name: "a", BaseURL: "http://a", Probe: staticProbe("h", nil)},
		Member{Name: "b", BaseURL: "http://b", Probe: staticProbe("h", nil)},
	)
	if _, err := b.Pick(); !errors.Is(err, ErrNoHealthy) {
		t.Fatalf("pick before admission: %v, want ErrNoHealthy", err)
	}
	b.Admit("a", "h")
	b.Admit("b", "h")

	seen := map[string]int{}
	var leases []Picked
	for i := 0; i < 64; i++ {
		p, err := b.Pick()
		if err != nil {
			t.Fatal(err)
		}
		seen[p.Name()]++
		leases = append(leases, p)
	}
	if seen["a"] == 0 || seen["b"] == 0 {
		t.Fatalf("p2c never picked one member: %v", seen)
	}
	// With held leases, p2c must have balanced in-flight counts closely.
	snap := b.Snapshot()
	if d := snap[0].Inflight - snap[1].Inflight; d > 2 || d < -2 {
		t.Fatalf("in-flight imbalance under p2c: %+v", snap)
	}
	for _, p := range leases {
		b.Finish(p, nil)
	}

	// A protocol failure must not eject.
	p, _ := b.Pick()
	b.Finish(p, &collect.ClientError{Kind: collect.FailBadFrame, Op: "submit", Err: errors.New("garbled")})
	if len(b.Healthy()) != 2 {
		t.Fatal("bad-frame error ejected a live replica")
	}
	// A transport failure ejects immediately.
	for {
		p, err := b.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() == "a" {
			b.Finish(p, &collect.ClientError{Kind: collect.FailDown, Op: "submit", Err: errors.New("refused")})
			break
		}
		b.Finish(p, nil)
	}
	if h := b.Healthy(); len(h) != 1 || h[0] != "b" {
		t.Fatalf("healthy after ejection: %v, want [b]", h)
	}
	for i := 0; i < 16; i++ {
		p, err := b.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != "b" {
			t.Fatalf("picked ejected replica %s", p.Name())
		}
		b.Finish(p, nil)
	}
}

func TestHealthLoopEjectsAndReadmits(t *testing.T) {
	var aUp atomic.Bool
	aUp.Store(true)
	b := mustBalancer(t, Config{Seed: 4, ExpectHash: "h", FailThreshold: 2, RecoverThreshold: 2},
		Member{Name: "a", BaseURL: "http://a", Probe: staticProbe("h", &aUp)},
		Member{Name: "b", BaseURL: "http://b", Probe: staticProbe("h", nil)},
	)
	b.Admit("a", "h")
	b.Admit("b", "h")

	ctx := context.Background()
	aUp.Store(false)
	b.CheckOnce(ctx)
	if len(b.Healthy()) != 2 {
		t.Fatal("single probe failure ejected below FailThreshold")
	}
	b.CheckOnce(ctx)
	if h := b.Healthy(); len(h) != 1 || h[0] != "b" {
		t.Fatalf("healthy after threshold: %v, want [b]", h)
	}

	aUp.Store(true)
	b.CheckOnce(ctx)
	if len(b.Healthy()) != 1 {
		t.Fatal("single healthy probe re-admitted below RecoverThreshold")
	}
	b.CheckOnce(ctx)
	if len(b.Healthy()) != 2 {
		t.Fatalf("replica not re-admitted after %d healthy probes", 2)
	}
	if got := b.Snapshot()[0]; got.State != "healthy" || got.ProbeFails != 0 {
		t.Fatalf("re-admitted row: %+v", got)
	}
}

func TestHealthLoopEjectsOnHashDrift(t *testing.T) {
	b := mustBalancer(t, Config{Seed: 5, ExpectHash: "good"},
		Member{Name: "a", BaseURL: "http://a", Probe: staticProbe("drifted", nil)},
	)
	b.Admit("a", "good") // admitted against the fleet hash, then drifts
	b.CheckOnce(context.Background())
	if len(b.Healthy()) != 0 {
		t.Fatal("hash-drifted replica stayed in rotation")
	}
	// Drifted hash keeps it out: probes succeed but never re-admit.
	b.CheckOnce(context.Background())
	b.CheckOnce(context.Background())
	b.CheckOnce(context.Background())
	if len(b.Healthy()) != 0 {
		t.Fatal("hash-drifted replica was re-admitted")
	}
}

func TestAdmitRefusesWrongHash(t *testing.T) {
	b := mustBalancer(t, Config{Seed: 6, ExpectHash: "good"},
		Member{Name: "a", BaseURL: "http://a"})
	if err := b.Admit("a", "evil"); err == nil {
		t.Fatal("admit with mismatched hash succeeded")
	}
	if st := b.Snapshot()[0].State; st != "refused" {
		t.Fatalf("state after bad admit: %q, want refused", st)
	}
}

func TestWriteMetricsLintsAndCounts(t *testing.T) {
	b := mustBalancer(t, Config{Seed: 7},
		Member{Name: "a", BaseURL: "http://a"},
		Member{Name: "b", BaseURL: "http://b"},
	)
	b.Admit("a", "h1")
	b.Admit("b", "h1")
	b.Eject("b", "test")
	b.CountRetry()

	var sb strings.Builder
	b.WriteMetrics(&sb)
	text := sb.String()

	problems, err := obs.Lint(strings.NewReader(text),
		"polygraph_fleet_replicas",
		"polygraph_fleet_ejections_total",
		"polygraph_fleet_readmissions_total",
		"polygraph_fleet_retries_total",
		"polygraph_fleet_replica_info",
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("lint: %s", p)
	}
	for _, want := range []string{
		`polygraph_fleet_replicas{state="healthy"} 1`,
		`polygraph_fleet_replicas{state="ejected"} 1`,
		`polygraph_fleet_replicas{state="pending"} 0`,
		"polygraph_fleet_ejections_total 1",
		"polygraph_fleet_retries_total 1",
		`polygraph_fleet_replica_info{replica="a",model_hash="h1",state="healthy"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

// TestHealthTableConcurrency hammers every concurrent surface of the
// health table at once — the torn-read-safety test the race detector
// turns into a proof obligation (run via scripts/check.sh test-race).
func TestHealthTableConcurrency(t *testing.T) {
	var flaky atomic.Bool
	b := mustBalancer(t, Config{Seed: 8, ExpectHash: "h", FailThreshold: 1, RecoverThreshold: 1},
		Member{Name: "a", BaseURL: "http://a", Probe: staticProbe("h", nil)},
		Member{Name: "b", BaseURL: "http://b", Probe: staticProbe("h", &flaky)},
		Member{Name: "c", BaseURL: "http://c", Probe: staticProbe("h", nil)},
	)
	for _, n := range []string{"a", "b", "c"} {
		b.Admit(n, "h")
	}
	flaky.Store(true)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p, err := b.Pick()
				if err != nil {
					continue
				}
				if (i+g)%7 == 0 {
					b.Finish(p, &collect.ClientError{Kind: collect.FailDown, Op: "submit", Err: errors.New("x")})
					b.CountRetry()
				} else {
					b.Finish(p, nil)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			flaky.Store(i%2 == 0)
			b.CheckOnce(ctx)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, st := range b.Snapshot() {
				if st.Name == "" || st.State == "" {
					t.Error("torn snapshot row")
					return
				}
			}
			var sb strings.Builder
			b.WriteMetrics(&sb)
		}
	}()
	wg.Wait()
	cancel()

	// Leases must balance: nothing in flight once all Finish calls ran.
	for _, st := range b.Snapshot() {
		if st.Inflight != 0 {
			t.Errorf("replica %s leaked %d in-flight leases", st.Name, st.Inflight)
		}
	}
}

// TestQuiesceWaitsForInflight pins the orderly-drain contract: Quiesce
// ejects the member immediately but does not return while a lease is
// still held, and after it returns no Pick routes to the member.
func TestQuiesceWaitsForInflight(t *testing.T) {
	b := mustBalancer(t, Config{Seed: 5},
		Member{Name: "a", BaseURL: "http://a", Probe: staticProbe("h", nil)},
		Member{Name: "b", BaseURL: "http://b", Probe: staticProbe("h", nil)},
	)
	b.Admit("a", "h")
	b.Admit("b", "h")

	// Hold a lease on b so the quiesce has something to wait for.
	var lease Picked
	for {
		p, err := b.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() == "b" {
			lease = p
			break
		}
		b.Finish(p, nil)
	}

	done := make(chan error, 1)
	go func() { done <- b.Quiesce(context.Background(), "b") }()

	// The ejection is immediate even while the quiesce blocks.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ejected := false
		for _, st := range b.Snapshot() {
			if st.Name == "b" && st.State == "ejected" {
				ejected = true
			}
		}
		if ejected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("quiesce never ejected the member")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("quiesce returned %v with a lease still held", err)
	case <-time.After(20 * time.Millisecond):
	}

	b.Finish(lease, nil)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("quiesce: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("quiesce did not return after the last lease finished")
	}

	for i := 0; i < 32; i++ {
		p, err := b.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() == "b" {
			t.Fatal("pick routed to a quiesced member")
		}
		b.Finish(p, nil)
	}

	// A quiesce that cannot drain reports the context error.
	p, err := b.Pick()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := b.Quiesce(ctx, "a"); err == nil {
		t.Fatal("quiesce with a stuck lease returned nil")
	}
	b.Finish(p, nil)
	if err := b.Quiesce(context.Background(), "nope"); err == nil {
		t.Fatal("quiesce of an unknown member returned nil")
	}
}
