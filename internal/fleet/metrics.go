package fleet

import (
	"io"

	"polygraph/internal/obs"
)

// WriteMetrics emits the fleet's Prometheus families from the balancer's
// health table. Emitted from the fleet operator's side (loadgen, ctl) —
// replicas do not know about each other, so fleet-level state can only
// be observed here.
//
// Families (all gated by cmd/promlint -require in CI):
//
//	polygraph_fleet_replicas{state}            gauge, all four states always present
//	polygraph_fleet_ejections_total            counter
//	polygraph_fleet_readmissions_total         counter
//	polygraph_fleet_retries_total              counter
//	polygraph_fleet_replica_info{replica,model_hash,state}  info gauge, value 1
func (b *Balancer) WriteMetrics(w io.Writer) {
	counts := make(map[State]int, len(States))
	snap := b.Snapshot()
	for _, ms := range b.members {
		counts[ms.getState()]++
	}
	series := make([]obs.LabeledValue, 0, len(States))
	for _, s := range States {
		series = append(series, obs.LabeledValue{Label: s.String(), Value: float64(counts[s])})
	}
	obs.WriteLabeledFamily(w, "polygraph_fleet_replicas",
		"Registered replicas by admission state.", "gauge", "state", series)
	obs.WriteMetric(w, "polygraph_fleet_ejections_total",
		"Replicas ejected from rotation (transport failures, probe failures, hash drift).",
		"counter", float64(b.ejections.Load()))
	obs.WriteMetric(w, "polygraph_fleet_readmissions_total",
		"Ejected replicas re-admitted after consecutive healthy probes with hash agreement.",
		"counter", float64(b.readmissions.Load()))
	obs.WriteMetric(w, "polygraph_fleet_retries_total",
		"Requests transparently re-routed to another replica after a transport failure.",
		"counter", float64(b.retries.Load()))

	info := make([]obs.MultiSeries, 0, len(snap))
	for _, st := range snap {
		hash := st.ModelHash
		if hash == "" {
			hash = "unknown"
		}
		info = append(info, obs.MultiSeries{
			Labels: []obs.Label{
				{Name: "replica", Value: st.Name},
				{Name: "model_hash", Value: hash},
				{Name: "state", Value: st.State},
			},
			Value: 1,
		})
	}
	obs.WriteMultiFamily(w, "polygraph_fleet_replica_info",
		"Per-replica deployed model hash and admission state; value is always 1.",
		"gauge", info)

	// Fleet-level SLO families when a rollup is attached, under the
	// polygraph_fleet_slo_* prefix so a dump that concatenates a replica
	// exposition with this one has no duplicate families.
	b.writeSLOMetrics(w)
}
