package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"polygraph/internal/collect"
	"polygraph/internal/obs"
	"polygraph/internal/slo"
)

// replicaExposition renders a minimal /metrics page carrying the
// counters the SLI derivation reads.
func replicaExposition(collections, rejectedScore int) string {
	return fmt.Sprintf(`# HELP polygraph_collections_total c
# TYPE polygraph_collections_total counter
polygraph_collections_total %d
# HELP polygraph_rejected_total c
# TYPE polygraph_rejected_total counter
polygraph_rejected_total{reason="score"} %d
`, collections, rejectedScore)
}

func rollupSpec() *slo.Spec {
	return &slo.Spec{
		Name:    "fleet-test",
		Windows: slo.Windows{FastShortS: 1, FastLongS: 2, FastBurn: 5, SlowShortS: 2, SlowLongS: 4, SlowBurn: 2},
		Objectives: []slo.Objective{
			{Name: "avail", Kind: slo.KindAvailability, Target: 0.99, WindowS: 4},
		},
	}
}

func metricsMember(name string, text *atomic.Pointer[string], fail *atomic.Bool) Member {
	return Member{
		Name:    name,
		BaseURL: "http://" + name,
		Probe:   staticProbe("h", nil),
		Metrics: func(ctx context.Context) (string, error) {
			if fail != nil && fail.Load() {
				return "", errors.New("unreachable")
			}
			return *text.Load(), nil
		},
	}
}

// TestSLORollupAggregates pins the fleet SLI contract: one tick sums
// the good/total counters of every reachable member, an unreachable
// member is skipped without wedging the tick, and a fleet-wide outage
// still ticks the engine (windows keep rolling) while reporting the
// scrape failure.
func TestSLORollupAggregates(t *testing.T) {
	var aText, bText atomic.Pointer[string]
	a := replicaExposition(100, 0)
	b := replicaExposition(200, 5)
	aText.Store(&a)
	bText.Store(&b)
	var aDown atomic.Bool

	bal := mustBalancer(t, Config{Seed: 11},
		metricsMember("a", &aText, &aDown),
		metricsMember("b", &bText, nil),
	)
	r, err := NewSLORollup(bal, rollupSpec(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bal.AttachSLO(r)
	if bal.SLO() != r {
		t.Fatal("SLO() does not return the attached rollup")
	}

	n, err := r.Collect(context.Background())
	if err != nil || n != 2 {
		t.Fatalf("Collect = %d, %v, want 2 members", n, err)
	}
	o := r.Engine().Status().Objectives[0]
	// 100+200 good, plus b's 5 server-fault rejects in the total.
	if o.Good != 300 || o.Total != 305 {
		t.Fatalf("fleet counters = %+v, want 300/305", o)
	}

	// One member down: its counters stop contributing; the clamp keeps
	// the window deltas non-negative.
	aDown.Store(true)
	if n, err := r.Collect(context.Background()); err != nil || n != 1 {
		t.Fatalf("Collect with a down = %d, %v, want 1", n, err)
	}
	// b alone: 200 good, 200+5 rejects total.
	if o := r.Engine().Status().Objectives[0]; o.Good != 200 || o.Total != 205 {
		t.Fatalf("fleet counters after outage = %+v, want 200/205", o)
	}

	// Fleet-wide outage: error reported, but the tick still landed.
	fail := func(ctx context.Context) (string, error) { return "", errors.New("down") }
	bal2 := mustBalancer(t, Config{Seed: 12}, Member{Name: "x", BaseURL: "http://x", Metrics: fail})
	r2, err := NewSLORollup(bal2, rollupSpec(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := r2.Engine().Status().Tick
	if _, err := r2.Collect(context.Background()); err == nil {
		t.Fatal("all-members-down Collect reported success")
	}
	if got := r2.Engine().Status().Tick; got != before+1 {
		t.Fatalf("outage tick did not advance engine: %d -> %d", before, got)
	}

	if _, err := NewSLORollup(nil, rollupSpec(), 1, nil); err == nil {
		t.Fatal("rollup without balancer built clean")
	}
}

// TestBalancerMetricsIncludeFleetSLO requires the balancer exposition
// to carry the polygraph_fleet_slo_* families once a rollup is
// attached — and the page to lint clean with them required.
func TestBalancerMetricsIncludeFleetSLO(t *testing.T) {
	var text atomic.Pointer[string]
	s := replicaExposition(90, 10) // 90/100 → 10x burn against 99%
	text.Store(&s)
	bal := mustBalancer(t, Config{Seed: 13}, metricsMember("a", &text, nil))
	bal.Admit("a", "h")
	r, err := NewSLORollup(bal, rollupSpec(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bal.AttachSLO(r)
	if _, err := r.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	bal.WriteMetrics(&sb)
	problems, err := obs.Lint(strings.NewReader(sb.String()),
		"polygraph_fleet_replicas",
		"polygraph_fleet_slo_target",
		"polygraph_fleet_slo_sli",
		"polygraph_fleet_slo_error_budget_remaining",
		"polygraph_fleet_slo_burn_rate",
		"polygraph_fleet_slo_alert",
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("lint: %s", p)
	}
	if !strings.Contains(sb.String(), `polygraph_fleet_slo_alert{objective="avail"} 1`) {
		t.Fatalf("fleet alert gauge not firing:\n%s", sb.String())
	}
}

// TestWriteMetricsHealthHammer races WriteMetrics scrapes against
// health transitions (CheckOnce, Eject, Admit), pick/finish traffic,
// and rollup ticks; with -race this is the data-race gate for the
// balancer's exposition path.
func TestWriteMetricsHealthHammer(t *testing.T) {
	var flaky atomic.Bool
	var text atomic.Pointer[string]
	s := replicaExposition(100, 1)
	text.Store(&s)
	bal := mustBalancer(t, Config{Seed: 14, ExpectHash: "h", FailThreshold: 1, RecoverThreshold: 1},
		Member{Name: "a", BaseURL: "http://a", Probe: staticProbe("h", nil),
			Metrics: func(ctx context.Context) (string, error) { return *text.Load(), nil }},
		Member{Name: "b", BaseURL: "http://b", Probe: staticProbe("h", &flaky),
			Metrics: func(ctx context.Context) (string, error) { return *text.Load(), nil }},
	)
	bal.Admit("a", "h")
	bal.Admit("b", "h")
	r, err := NewSLORollup(bal, rollupSpec(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bal.AttachSLO(r)

	iters := 200
	if testing.Short() {
		iters = 50
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}
	worker(func(i int) { // scrapes
		var sb strings.Builder
		bal.WriteMetrics(&sb)
		if sb.Len() == 0 {
			t.Error("empty exposition under hammer")
		}
	})
	worker(func(i int) { // health transitions via probe loop
		flaky.Store(i%2 == 0)
		bal.CheckOnce(context.Background())
	})
	worker(func(i int) { // manual eject/admit churn
		bal.Eject("a", "hammer")
		bal.Admit("a", "h")
	})
	worker(func(i int) { // pick/finish traffic with occasional transport failures
		p, err := bal.Pick()
		if err != nil {
			return // rotation momentarily empty under churn
		}
		var ferr error
		if i%16 == 15 {
			ferr = &collect.ClientError{Kind: collect.FailDown, Op: "submit", Err: errors.New("hammer")}
		}
		bal.Finish(p, ferr)
	})
	worker(func(i int) { // rollup ticks
		r.Collect(context.Background())
	})
	close(start)
	wg.Wait()

	var sb strings.Builder
	bal.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "polygraph_fleet_slo_sli") {
		t.Fatal("rollup families missing after hammer")
	}
}
