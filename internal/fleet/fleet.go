// Package fleet is the multi-replica serving tier of Browser Polygraph:
// a client-side load balancer with health-check-driven ejection and a
// control plane that distributes one trained model to every replica and
// hash-verifies the deployment before admitting a replica to rotation.
//
// The design splits three concerns:
//
//   - Member: how to reach one replica (base URL, plus optional
//     in-process overrides for probing and stat collection, which keep a
//     killed replica's counters readable for reconciliation).
//   - Balancer: who receives the next request. Power-of-two-choices over
//     the healthy set by in-flight count, with immediate ejection on
//     transport failure (collect.IsDown) and probe-driven re-admission.
//   - Controller: which model the fleet serves. Distribute serializes
//     the model once, pushes it to every replica's admin endpoint, and
//     admits only replicas that read back the identical core.Model.Hash —
//     the invariant that keeps fleet verdicts auditable (every audit
//     record's model hash matches every other replica's).
//
// The admission state machine:
//
//	Pending ──hash verified──▶ Healthy ──down/probe-fail/hash-drift──▶ Ejected
//	   │                          ▲                                       │
//	   └──hash mismatch──▶ Refused│◀───── RecoverThreshold probes ────────┘
//	                              └─────── (hash re-verified) ────────────┘
//
// Refused is terminal until a new Distribute run re-verifies the
// replica: a mismatched model is an operator error, not a transient.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"polygraph/internal/collect"
	"polygraph/internal/obs"
	"polygraph/internal/rng"
)

// AdminModelPath is the replica admin endpoint: GET returns the deployed
// ModelInfo, POST swaps in the model serialized in the request body.
// internal/serving mounts it next to the collect endpoints.
const AdminModelPath = "/admin/model"

// ModelInfo is the admin view of a replica's deployed model — what the
// controller reads back to verify a distribution.
type ModelInfo struct {
	Hash     string  `json:"hash"`
	Features int     `json:"features"`
	Clusters int     `json:"clusters"`
	Accuracy float64 `json:"accuracy"`
}

// State is a member's position in the admission state machine.
type State int32

const (
	// StatePending marks a registered replica not yet hash-verified.
	StatePending State = iota
	// StateHealthy marks a replica in rotation.
	StateHealthy
	// StateEjected marks a replica out of rotation after failures; the
	// health loop re-admits it when probes succeed and the hash matches.
	StateEjected
	// StateRefused marks a replica whose model hash disagreed with the
	// fleet's; only a new Distribute run can admit it.
	StateRefused
)

// States lists every state in declaration order (metrics emit all of
// them, zeros included, so dashboards can rate() from first scrape).
var States = [...]State{StatePending, StateHealthy, StateEjected, StateRefused}

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateHealthy:
		return "healthy"
	case StateEjected:
		return "ejected"
	case StateRefused:
		return "refused"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Member describes how to reach one replica. The zero overrides make a
// purely HTTP member; in-process replicas (internal/serving) supply
// Probe/Stats/Metrics functions so their counters stay readable for
// reconciliation even after their listener is killed.
type Member struct {
	// Name identifies the replica in logs, metrics, and reports.
	Name string
	// BaseURL is the replica's serving root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Probe overrides the HTTP health+hash probe; it returns the
	// replica's deployed model hash ("" when unknown).
	Probe func(ctx context.Context) (modelHash string, err error)
	// Stats overrides the HTTP /v1/stats fetch.
	Stats func(ctx context.Context) (collect.Stats, error)
	// Metrics overrides the HTTP /metrics fetch (full exposition text).
	Metrics func(ctx context.Context) (string, error)
}

// FetchStats resolves the member's /v1/stats snapshot through the
// override or HTTP.
func (m Member) FetchStats(ctx context.Context, client *http.Client) (collect.Stats, error) {
	if m.Stats != nil {
		return m.Stats(ctx)
	}
	c := collect.Client{BaseURL: m.BaseURL, HTTPClient: client}
	return c.FetchStats(ctx)
}

// FetchMetrics resolves the member's /metrics exposition through the
// override or HTTP.
func (m Member) FetchMetrics(ctx context.Context, client *http.Client) (string, error) {
	if m.Metrics != nil {
		return m.Metrics(ctx)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("fleet: %s /metrics returned %d", m.Name, resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	return string(b), err
}

// memberState is one row of the shared health table. The hot fields
// (state, inflight, fails) are atomics so Pick/Finish never take a lock;
// hash is read/written under mu because strings cannot be stored
// atomically without tearing the (pointer, length) pair apart from the
// state it belongs with.
type memberState struct {
	m Member

	state    atomic.Int32
	inflight atomic.Int64
	// probeFails and probeOKs count consecutive probe outcomes; they
	// drive the eject/re-admit thresholds.
	probeFails atomic.Int64
	probeOKs   atomic.Int64

	mu   sync.Mutex
	hash string // last verified/probed model hash
}

func (ms *memberState) getState() State  { return State(ms.state.Load()) }
func (ms *memberState) setState(s State) { ms.state.Store(int32(s)) }
func (ms *memberState) setHash(h string) { ms.mu.Lock(); ms.hash = h; ms.mu.Unlock() }
func (ms *memberState) getHash() string  { ms.mu.Lock(); defer ms.mu.Unlock(); return ms.hash }

// MemberStatus is a torn-read-safe snapshot of one health-table row.
type MemberStatus struct {
	Name      string `json:"name"`
	BaseURL   string `json:"base_url"`
	State     string `json:"state"`
	ModelHash string `json:"model_hash,omitempty"`
	Inflight  int64  `json:"inflight,omitempty"`
	// ProbeFails is the current consecutive probe-failure streak.
	ProbeFails int64 `json:"probe_fails,omitempty"`
}

// Config parameterizes a Balancer.
type Config struct {
	// Seed drives the deterministic pick-jitter stream.
	Seed uint64
	// ExpectHash, when set, is the model hash every replica must report
	// to be admitted or re-admitted; a probed hash that disagrees ejects
	// the replica (hash drift).
	ExpectHash string
	// FailThreshold is the consecutive probe failures that eject a
	// healthy replica (default 2). Transport failures reported through
	// Finish eject immediately regardless.
	FailThreshold int
	// RecoverThreshold is the consecutive probe successes (with hash
	// agreement) that re-admit an ejected replica (default 2).
	RecoverThreshold int
	// ProbeTimeout bounds each health probe (default 2s).
	ProbeTimeout time.Duration
	// Client is the HTTP client for default probes (nil builds one).
	Client *http.Client
	// Logger receives admission/ejection events; nil discards.
	Logger *slog.Logger
}

// ErrNoHealthy is returned by Pick when the rotation is empty.
var ErrNoHealthy = errors.New("fleet: no healthy replicas in rotation")

// Balancer routes requests across the fleet's healthy replicas by
// power-of-two-choices on in-flight counts. All methods are safe for
// concurrent use.
type Balancer struct {
	cfg     Config
	client  *http.Client
	logger  *slog.Logger
	members []*memberState
	byName  map[string]*memberState

	// pickMu guards the jitter stream; everything else on the pick path
	// is atomic.
	pickMu sync.Mutex
	rng    *rng.PCG
	// pickGate lets Quiesce flush in-flight Picks: Pick holds the read
	// side from healthy-set snapshot through the inflight increment, so
	// after Quiesce cycles the write side, no Pick can still act on a
	// pre-ejection view of the member being drained.
	pickGate sync.RWMutex

	picks        atomic.Int64
	retries      atomic.Int64
	ejections    atomic.Int64
	readmissions atomic.Int64

	// sloRollup, when attached, adds the fleet-level burn-rate families
	// to WriteMetrics.
	sloRollup atomic.Pointer[SLORollup]
}

// NewBalancer registers the members (all Pending until admitted).
func NewBalancer(cfg Config, members ...Member) (*Balancer, error) {
	if len(members) == 0 {
		return nil, errors.New("fleet: balancer needs at least one member")
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.RecoverThreshold <= 0 {
		cfg.RecoverThreshold = 2
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NewLogger(nil, false)
	}
	b := &Balancer{
		cfg:    cfg,
		client: client,
		logger: logger,
		byName: make(map[string]*memberState, len(members)),
		rng:    rng.New(cfg.Seed),
	}
	for _, m := range members {
		if m.Name == "" || m.BaseURL == "" && m.Probe == nil {
			return nil, fmt.Errorf("fleet: member needs a name and a base URL (got %+v)", m)
		}
		if _, dup := b.byName[m.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate member name %q", m.Name)
		}
		ms := &memberState{m: m}
		b.members = append(b.members, ms)
		b.byName[m.Name] = ms
	}
	return b, nil
}

// Members returns the registered members in registration order.
func (b *Balancer) Members() []Member {
	out := make([]Member, len(b.members))
	for i, ms := range b.members {
		out[i] = ms.m
	}
	return out
}

// ExpectedHash returns the model hash the fleet is pinned to ("" when
// unpinned).
func (b *Balancer) ExpectedHash() string { return b.cfg.ExpectHash }

// Client returns the HTTP client the balancer probes with, for callers
// that fetch replica surfaces (stats, metrics) alongside it.
func (b *Balancer) Client() *http.Client { return b.client }

// Admit moves a member into rotation with the hash it verified at. Used
// by the controller after a hash-verified distribution.
func (b *Balancer) Admit(name, hash string) error {
	ms := b.byName[name]
	if ms == nil {
		return fmt.Errorf("fleet: admit unknown member %q", name)
	}
	if b.cfg.ExpectHash != "" && hash != b.cfg.ExpectHash {
		b.Refuse(name, hash)
		return fmt.Errorf("fleet: member %q reports hash %s, fleet expects %s", name, hash, b.cfg.ExpectHash)
	}
	ms.setHash(hash)
	ms.probeFails.Store(0)
	ms.probeOKs.Store(0)
	ms.setState(StateHealthy)
	b.logger.Info("fleet: replica admitted", "replica", name, "model_hash", hash)
	return nil
}

// Refuse marks a member's model hash as disagreeing with the fleet's; it
// leaves rotation until a new distribution re-verifies it.
func (b *Balancer) Refuse(name, hash string) {
	ms := b.byName[name]
	if ms == nil {
		return
	}
	ms.setHash(hash)
	ms.setState(StateRefused)
	b.logger.Warn("fleet: replica refused (hash mismatch)",
		"replica", name, "model_hash", hash, "expect", b.cfg.ExpectHash)
}

// Eject removes a member from rotation (idempotent).
func (b *Balancer) Eject(name, reason string) {
	ms := b.byName[name]
	if ms == nil {
		return
	}
	b.eject(ms, reason)
}

// Quiesce takes a member out of rotation for an orderly drain: it
// ejects the replica so no new request routes there, flushes any Pick
// already holding a pre-ejection view of the healthy set, and then
// waits for the member's in-flight count to reach zero — at which point
// the caller can shut the replica down without severing an exchange.
//
// The order matters for exact reconciliation. An unannounced shutdown
// races http.Server's idle-connection close against a request landing
// on a kept-alive connection: the handler can score the request while
// the response write fails, so the client retries and the fleet counts
// one score the client never saw — the two-generals ambiguity no retry
// policy can close. Draining out of rotation first is both the fix and
// what a maintenance drain should do anyway.
func (b *Balancer) Quiesce(ctx context.Context, name string) error {
	ms := b.byName[name]
	if ms == nil {
		return fmt.Errorf("fleet: quiesce: unknown member %q", name)
	}
	b.eject(ms, "drained")
	// Cycle the pick gate: any Pick that snapshotted the member as
	// healthy before the ejection has incremented its inflight count by
	// the time the write lock is granted.
	b.pickGate.Lock()
	b.pickGate.Unlock() //nolint:staticcheck // empty critical section is the barrier
	for ms.inflight.Load() != 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: quiesce %s: %w (inflight %d)", name, ctx.Err(), ms.inflight.Load())
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

func (b *Balancer) eject(ms *memberState, reason string) {
	if ms.state.CompareAndSwap(int32(StateHealthy), int32(StateEjected)) {
		ms.probeOKs.Store(0)
		b.ejections.Add(1)
		b.logger.Warn("fleet: replica ejected", "replica", ms.m.Name, "reason", reason)
	}
}

func (b *Balancer) readmit(ms *memberState, hash string) {
	if ms.state.CompareAndSwap(int32(StateEjected), int32(StateHealthy)) {
		ms.setHash(hash)
		ms.probeFails.Store(0)
		b.readmissions.Add(1)
		b.logger.Info("fleet: replica re-admitted", "replica", ms.m.Name, "model_hash", hash)
	}
}

// Picked is one routing decision: a healthy replica with an in-flight
// lease. Callers must Finish it exactly once.
type Picked struct{ ms *memberState }

// Name returns the picked replica's name.
func (p Picked) Name() string { return p.ms.m.Name }

// BaseURL returns the picked replica's serving root.
func (p Picked) BaseURL() string { return p.ms.m.BaseURL }

// Pick chooses a healthy replica: with two or more in rotation it
// samples two distinct candidates from the deterministic jitter stream
// and takes the one with fewer requests in flight (power-of-two-choices
// — near-optimal load spread at O(1) cost, no global ordering).
func (b *Balancer) Pick() (Picked, error) {
	b.pickGate.RLock()
	defer b.pickGate.RUnlock()
	// Healthy set snapshot: states are atomics, so this is a consistent-
	// enough view — a replica ejected mid-scan fails its request and is
	// retried by the caller.
	var healthy []*memberState
	for _, ms := range b.members {
		if ms.getState() == StateHealthy {
			healthy = append(healthy, ms)
		}
	}
	if len(healthy) == 0 {
		return Picked{}, ErrNoHealthy
	}
	b.picks.Add(1)
	if len(healthy) == 1 {
		healthy[0].inflight.Add(1)
		return Picked{ms: healthy[0]}, nil
	}
	b.pickMu.Lock()
	i := b.rng.Intn(len(healthy))
	j := b.rng.Intn(len(healthy) - 1)
	b.pickMu.Unlock()
	if j >= i {
		j++
	}
	ms := healthy[i]
	if healthy[j].inflight.Load() < ms.inflight.Load() {
		ms = healthy[j]
	}
	ms.inflight.Add(1)
	return Picked{ms: ms}, nil
}

// Finish releases a pick's in-flight lease and classifies the outcome:
// a transport-level failure (collect.IsDown) ejects the replica
// immediately — waiting for the next probe round would keep routing
// live traffic at a dead socket. Protocol and status failures leave the
// replica in rotation.
func (b *Balancer) Finish(p Picked, err error) {
	if p.ms == nil {
		return
	}
	p.ms.inflight.Add(-1)
	if err != nil && collect.IsDown(err) {
		b.eject(p.ms, "transport failure")
	}
}

// CountRetry records one transparent re-route after a failed attempt
// (exported at /metrics as polygraph_fleet_retries_total).
func (b *Balancer) CountRetry() { b.retries.Add(1) }

// Healthy returns the names of members currently in rotation.
func (b *Balancer) Healthy() []string {
	var out []string
	for _, ms := range b.members {
		if ms.getState() == StateHealthy {
			out = append(out, ms.m.Name)
		}
	}
	return out
}

// Snapshot returns a torn-read-safe view of the health table in
// registration order.
func (b *Balancer) Snapshot() []MemberStatus {
	out := make([]MemberStatus, len(b.members))
	for i, ms := range b.members {
		out[i] = MemberStatus{
			Name:       ms.m.Name,
			BaseURL:    ms.m.BaseURL,
			State:      ms.getState().String(),
			ModelHash:  ms.getHash(),
			Inflight:   ms.inflight.Load(),
			ProbeFails: ms.probeFails.Load(),
		}
	}
	return out
}

// probe runs one member's health+hash probe through its override or
// HTTP (GET /healthz, then GET /admin/model for the hash; a replica
// without the admin endpoint probes healthy with an unknown hash).
func (b *Balancer) probe(ctx context.Context, ms *memberState) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, b.cfg.ProbeTimeout)
	defer cancel()
	if ms.m.Probe != nil {
		return ms.m.Probe(ctx)
	}
	c := collect.Client{BaseURL: ms.m.BaseURL, HTTPClient: b.client}
	if err := c.Health(ctx); err != nil {
		return "", err
	}
	info, err := FetchModelInfo(ctx, b.client, ms.m.BaseURL)
	if err != nil {
		// Health passed; a missing admin surface is not a liveness
		// failure, just an unknown hash.
		return "", nil
	}
	return info.Hash, nil
}

// CheckOnce runs one probe round over the whole table and applies the
// ejection/re-admission thresholds. Exposed for deterministic tests;
// RunHealth drives it on a cadence.
func (b *Balancer) CheckOnce(ctx context.Context) {
	for _, ms := range b.members {
		state := ms.getState()
		if state == StatePending || state == StateRefused {
			continue // admission is the controller's decision
		}
		hash, err := b.probe(ctx, ms)
		if err != nil {
			ms.probeOKs.Store(0)
			if fails := ms.probeFails.Add(1); state == StateHealthy && fails >= int64(b.cfg.FailThreshold) {
				b.eject(ms, fmt.Sprintf("%d consecutive probe failures", fails))
			}
			continue
		}
		ms.probeFails.Store(0)
		if b.cfg.ExpectHash != "" && hash != "" && hash != b.cfg.ExpectHash {
			// Hash drift: the replica is alive but serving the wrong
			// model — worse than down, because its verdicts diverge.
			ms.probeOKs.Store(0)
			if state == StateHealthy {
				b.eject(ms, "model hash drift: "+hash)
			}
			continue
		}
		if state == StateEjected {
			if oks := ms.probeOKs.Add(1); oks >= int64(b.cfg.RecoverThreshold) {
				b.readmit(ms, hash)
			}
		}
	}
}

// RunHealth probes the table every interval until ctx is done.
func (b *Balancer) RunHealth(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			b.CheckOnce(ctx)
		}
	}
}

// FetchModelInfo reads a replica's deployed-model admin view.
func FetchModelInfo(ctx context.Context, client *http.Client, baseURL string) (ModelInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+AdminModelPath, nil)
	if err != nil {
		return ModelInfo{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return ModelInfo{}, fmt.Errorf("fleet: fetch model info: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ModelInfo{}, fmt.Errorf("fleet: %s returned %d", AdminModelPath, resp.StatusCode)
	}
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return ModelInfo{}, fmt.Errorf("fleet: decode model info: %w", err)
	}
	return info, nil
}
