package collect

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// RateLimiter is a sharded token-bucket limiter keyed by client address.
// The collection endpoint is internet-facing; a misbehaving client (or a
// fingerprint-replay loop) must not be able to monopolize the scoring
// tier. Buckets refill at Rate tokens/second up to Burst; idle buckets
// are evicted lazily.
type RateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	shards [16]limiterShard
}

type limiterShard struct {
	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter allowing ratePerSec sustained requests
// with the given burst per client key.
func NewRateLimiter(ratePerSec float64, burst int) *RateLimiter {
	if ratePerSec <= 0 {
		ratePerSec = 50
	}
	if burst <= 0 {
		burst = 100
	}
	rl := &RateLimiter{rate: ratePerSec, burst: float64(burst), now: time.Now}
	for i := range rl.shards {
		rl.shards[i].buckets = map[string]*bucket{}
	}
	return rl
}

// Allow consumes one token for key, reporting whether the request may
// proceed.
func (rl *RateLimiter) Allow(key string) bool {
	sh := &rl.shards[fnvShard(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	now := rl.now()
	b := sh.buckets[key]
	if b == nil {
		// Lazy eviction: when a shard grows large, drop buckets that
		// have fully refilled (they carry no state worth keeping).
		if len(sh.buckets) > 4096 {
			for k, old := range sh.buckets {
				if now.Sub(old.last).Seconds()*rl.rate >= rl.burst {
					delete(sh.buckets, k)
				}
			}
		}
		b = &bucket{tokens: rl.burst, last: now}
		sh.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * rl.rate
		if b.tokens > rl.burst {
			b.tokens = rl.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func fnvShard(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h % 16
}

// Middleware wraps an http.Handler, answering 429 for clients over
// budget. The key is the remote IP (ignoring the ephemeral port).
func (rl *RateLimiter) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.RemoteAddr
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			key = host
		}
		if !rl.Allow(key) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		next.ServeHTTP(w, r)
	})
}
