// Package collect is the web-scale deployment tier of Browser Polygraph:
// an HTTP service that serves the fingerprint-collection script, ingests
// ≤1 KB fingerprint payloads, scores them against the trained model in
// real time (paper §3 budget: 100 ms; measured cost: microseconds), and
// retains flagged sessions for the fraud team. It also provides a client
// and a streaming scorer for batch replay.
//
// Observability (internal/obs) is threaded through the whole serving
// path: every ingest request runs under a deterministic trace whose
// spans (decode, score, record, pipeline stages) land in a lock-free
// ring served at /debug/traces, per-endpoint request latency feeds
// Prometheus histogram families at /metrics, rejects are counted by
// cause, and accepted feature vectors optionally stream into a drift
// monitor.
package collect

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"polygraph/internal/audit"
	"polygraph/internal/core"
	"polygraph/internal/fingerprint"
	"polygraph/internal/obs"
	"polygraph/internal/pipeline"
	"polygraph/internal/slo"
)

// The ingest endpoints, also the labels of the per-endpoint latency
// histogram family at /metrics. EndpointTCP and EndpointBatch label the
// framed TCP listener and the ScoreStream replay path.
const (
	EndpointBinary = "/v1/collect"
	EndpointJSON   = "/v1/collect-json"
	EndpointTCP    = "tcp"
	EndpointBatch  = "batch"
)

// deployed pairs a model with its audit hash so a hot swap can never
// tear the two apart: an audit record is always stamped with the hash
// of the exact model that produced its verdict.
type deployed struct {
	m    *core.Model
	hash string
}

// modelHolder supports hot model swaps: the drift detector's retrain
// loop produces a new model, and the serving tier adopts it without
// downtime. Scoring paths load the pointer once per request, so a swap
// never tears a request.
type modelHolder struct {
	ptr atomic.Pointer[deployed]
}

func (h *modelHolder) load() *core.Model { return h.ptr.Load().m }

func (h *modelHolder) loadDeployed() *deployed { return h.ptr.Load() }

func (h *modelHolder) store(m *core.Model) error {
	hash, err := m.Hash()
	if err != nil {
		return fmt.Errorf("collect: hash model: %w", err)
	}
	h.ptr.Store(&deployed{m: m, hash: hash})
	return nil
}

// Decision is the scoring outcome returned to the risk system.
type Decision struct {
	SessionID  string `json:"session_id"`
	Cluster    int    `json:"cluster"`
	Matched    bool   `json:"matched"`
	RiskFactor int    `json:"risk_factor"`
	Flagged    bool   `json:"flagged"`
	// ElapsedMicros is the server-side scoring latency in microseconds.
	ElapsedMicros int64 `json:"elapsed_us"`
}

// Config parameterizes the server.
type Config struct {
	// Model scores sessions; required.
	Model *core.Model
	// Store retains flagged decisions; nil uses a fresh MemoryStore.
	Store *MemoryStore
	// MaxBodyBytes caps request bodies; 0 uses the paper's 1 KB budget
	// (plus framing slack for the JSON variant).
	MaxBodyBytes int64
	// RateLimitPerSec enables per-client-IP token-bucket limiting on
	// the ingestion endpoints (0 disables). RateBurst defaults to
	// 2× the rate. Limited requests count as rejects with
	// reason="rate_limit".
	RateLimitPerSec float64
	RateBurst       int
	// Journal, when set, durably records every flagged decision.
	Journal *Journal
	// Logger receives structured request/reject/slow-trace records;
	// nil discards. Build one with obs.NewLogger.
	Logger *slog.Logger
	// Tracer overrides the request tracer (shared with a TCP listener,
	// pinned seed in tests); nil builds one from TraceRingSize,
	// TraceSeed, SlowRequest, and Logger.
	Tracer *obs.Tracer
	// TraceRingSize bounds the /debug/traces ring (0 = 256).
	TraceRingSize int
	// TraceSeed drives the deterministic trace-ID stream.
	TraceSeed uint64
	// SlowRequest is the structured-log threshold for request traces
	// (0 = the paper's 100 ms scoring budget).
	SlowRequest time.Duration
	// Drift, when set, receives every accepted feature vector for live
	// PSI monitoring; /metrics then exports the drift families.
	Drift *obs.DriftMonitor
	// Audit, when set, durably records decisions (with explanations)
	// in the append-only ledger: every flagged session, benign ones per
	// the ledger's sampling policy. Recent records are served at
	// /debug/decisions and the polygraph_audit_* families appear at
	// /metrics.
	Audit *audit.Ledger
	// AuditTopK bounds the explanation contribution lists on audited
	// records (0 = core.DefaultExplainTopK).
	AuditTopK int
	// TCPMaxBatch caps how many pipelined frames the TCP listener
	// coalesces into one scored batch (0 = 256, 1 disables coalescing
	// so every frame scores alone). Only NewTCPServer reads it.
	TCPMaxBatch int
	// TCPMaxDelay, when positive, lets the coalescer wait up to this
	// long after a batch's first frame for more pipelined frames to
	// arrive. 0 (the default, and what the latency contract assumes)
	// coalesces only frames already buffered — an interactive client
	// sending one frame at a time never waits.
	TCPMaxDelay time.Duration
	// ScoreDelay injects an artificial per-request delay into the HTTP
	// ingest path, inside the latency-histogram measurement. It exists
	// solely for SLO burn-rate fault drills (loadgen -fault-slow, CI's
	// seeded breach test) and must never be set in production.
	ScoreDelay time.Duration
}

// Server is the collection/scoring HTTP service. Create with NewServer;
// it implements http.Handler.
type Server struct {
	model   modelHolder
	store   *MemoryStore
	journal *Journal
	maxLen  int64
	logger  *slog.Logger
	tracer  *obs.Tracer
	drift   *obs.DriftMonitor
	auditor *auditor
	limiter *RateLimiter
	mux     *http.ServeMux

	// bufs pools per-request scoring buffers (feature vector + model
	// scratch) so the steady-state ingest path allocates nothing for the
	// numeric work. Buffers are model-agnostic and survive SwapModel.
	bufs sync.Pool

	// hists holds per-endpoint request-handling latency of successfully
	// scored requests (handler entry → response written), the source of
	// the polygraph_score_duration_microseconds histogram family.
	hists map[string]*obs.Hist

	stats serverStats
	// rejects counts rejections by cause, indexed by rejectReason.
	rejects [numReasons]atomic.Int64

	// trainedAtNs is the deployed model's training completion time
	// (unix nanoseconds, 0 = unknown), exported at /metrics.
	trainedAtNs atomic.Int64

	// tcp, when attached, contributes the EndpointTCP histogram series
	// and counters to /metrics.
	tcp atomic.Pointer[TCPServer]

	// slo, when attached, contributes the polygraph_slo_* families to
	// /metrics and serves the /debug/slo status page.
	slo atomic.Pointer[slo.Engine]

	// scoreDelay is Config.ScoreDelay (fault drills only).
	scoreDelay time.Duration

	// trainMu guards trainStages, the per-stage timings of the last
	// (re)train that produced the deployed model; exported at /metrics.
	trainMu     sync.RWMutex
	trainStages []pipeline.Timing
}

type serverStats struct {
	received atomic.Int64
	rejected atomic.Int64
	flagged  atomic.Int64
}

// rejectReason taxonomizes rejects for polygraph_rejected_total.
type rejectReason int

const (
	reasonRead rejectReason = iota
	reasonTooLarge
	reasonDecode
	reasonBadVersion
	reasonBadJSON
	reasonBadDim
	reasonScore
	reasonRateLimit
	reasonBadRequest
	numReasons
)

// reasonNames are the reason label values; every value is always
// exported (zeros included) so dashboards can rate() them from first
// scrape.
var reasonNames = [numReasons]string{
	"read", "too_large", "decode", "bad_version", "bad_json",
	"bad_dim", "score", "rate_limit", "bad_request",
}

// NewServer validates the config and builds the service.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, errors.New("collect: Config.Model is required")
	}
	maxLen := cfg.MaxBodyBytes
	if maxLen == 0 {
		maxLen = 4 * fingerprint.MaxPayloadSize // JSON framing slack
	}
	store := cfg.Store
	if store == nil {
		store = NewMemoryStore(4096)
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(obs.TracerConfig{
			RingSize:      cfg.TraceRingSize,
			Seed:          cfg.TraceSeed,
			SlowThreshold: cfg.SlowRequest,
			Logger:        cfg.Logger,
		})
	}
	s := &Server{
		store:   store,
		journal: cfg.Journal,
		maxLen:  maxLen,
		logger:  cfg.Logger,
		tracer:  tracer,
		drift:   cfg.Drift,
		mux:     http.NewServeMux(),
		hists: map[string]*obs.Hist{
			EndpointBinary: new(obs.Hist),
			EndpointJSON:   new(obs.Hist),
			EndpointBatch:  new(obs.Hist),
		},
		scoreDelay: cfg.ScoreDelay,
	}
	if err := s.model.store(cfg.Model); err != nil {
		return nil, err
	}
	if cfg.Audit != nil {
		s.auditor = &auditor{ledger: cfg.Audit, topK: cfg.AuditTopK}
	}
	if cfg.RateLimitPerSec > 0 {
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = int(2 * cfg.RateLimitPerSec)
		}
		// One limiter shared by both ingest endpoints: a client's budget
		// covers its total ingest traffic, not per-endpoint budgets.
		s.limiter = NewRateLimiter(cfg.RateLimitPerSec, burst)
	}
	s.mux.HandleFunc("GET /script.js", s.handleScript)
	s.mux.HandleFunc("POST "+EndpointBinary, s.handleCollectBinary)
	s.mux.HandleFunc("POST "+EndpointJSON, s.handleCollectJSON)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/flagged", s.handleFlagged)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /debug/", s.handleDebugIndex)
	s.mux.HandleFunc("GET /debug/traces", s.tracer.ServeTraces)
	s.mux.HandleFunc("GET /debug/decisions", s.handleDecisions)
	s.mux.HandleFunc("GET /debug/slo", s.handleSLO)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Store exposes the flagged-session store.
func (s *Server) Store() *MemoryStore { return s.store }

// Tracer exposes the request tracer (to share with a TCP listener or
// inspect the ring in tests).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Hist returns the latency histogram for an endpoint label (nil for
// unknown labels). The EndpointBatch histogram is the one replay
// tooling should pass to ScoreStreamObserved so batch scoring shows up
// in this server's /metrics.
func (s *Server) Hist(endpoint string) *obs.Hist { return s.hists[endpoint] }

// AttachTCP includes a TCP batch listener's histogram and counters in
// this server's /metrics exposition.
func (s *Server) AttachTCP(t *TCPServer) { s.tcp.Store(t) }

// SetSLO attaches a burn-rate engine: its polygraph_slo_* families join
// the /metrics exposition and GET /debug/slo serves its status page.
// The caller owns the engine's tick loop (slo.Engine.Run or explicit
// ticks); the server only reads evaluations.
func (s *Server) SetSLO(e *slo.Engine) { s.slo.Store(e) }

// SLO returns the attached burn-rate engine (nil when none).
func (s *Server) SLO() *slo.Engine { return s.slo.Load() }

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	e := s.slo.Load()
	if e == nil {
		http.Error(w, "no SLO engine attached", http.StatusNotFound)
		return
	}
	e.ServeHTTP(w, r)
}

// SwapModel atomically replaces the scoring model — the deployment step
// of the §6.6 retraining loop. In-flight requests finish on the model
// they started with; subsequent requests (and the served script, if the
// feature set changed) use the new one.
func (s *Server) SwapModel(m *core.Model) error {
	if m == nil {
		return errors.New("collect: SwapModel with nil model")
	}
	return s.model.store(m)
}

// ModelHash returns the audit hash of the deployed model (the value
// stamped on every audit record it produces).
func (s *Server) ModelHash() string { return s.model.loadDeployed().hash }

// Model returns the currently deployed model.
func (s *Server) Model() *core.Model { return s.model.load() }

// SetModelTrainedAt records when the deployed model was trained (zero
// time = unknown); /metrics exports it as
// polygraph_model_trained_timestamp_seconds so dashboards can alert on
// stale models.
func (s *Server) SetModelTrainedAt(t time.Time) {
	if t.IsZero() {
		s.trainedAtNs.Store(0)
		return
	}
	s.trainedAtNs.Store(t.UnixNano())
}

// ModelTrainedAt returns the recorded training time (zero when unset).
func (s *Server) ModelTrainedAt() time.Time {
	ns := s.trainedAtNs.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// SetTrainStages records the stage timings of the training run that
// produced the deployed model; /metrics exports them. Call it alongside
// SwapModel (or at startup) whenever a TrainReport is available.
func (s *Server) SetTrainStages(stages []pipeline.Timing) {
	copied := append([]pipeline.Timing(nil), stages...)
	s.trainMu.Lock()
	s.trainStages = copied
	s.trainMu.Unlock()
}

// TrainStages returns a copy of the last recorded training-stage
// timings (nil when none were ever set).
func (s *Server) TrainStages() []pipeline.Timing {
	s.trainMu.RLock()
	defer s.trainMu.RUnlock()
	return append([]pipeline.Timing(nil), s.trainStages...)
}

func (s *Server) handleScript(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/javascript")
	w.Header().Set("Cache-Control", "public, max-age=3600")
	io.WriteString(w, CollectionScript(s.model.load().Features, EndpointJSON))
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *Server) handleCollectBinary(w http.ResponseWriter, r *http.Request) {
	s.serveCollect(w, r, EndpointBinary, decodeBinaryPayload)
}

func (s *Server) handleCollectJSON(w http.ResponseWriter, r *http.Request) {
	s.serveCollect(w, r, EndpointJSON, decodeJSONPayload)
}

// serveCollect is the shared ingest path: open a trace, rate-limit,
// decode, score, and seal the trace with the outcome. Only successfully
// scored requests feed the endpoint latency histogram — rejects are
// counted by cause instead.
func (s *Server) serveCollect(w http.ResponseWriter, r *http.Request, endpoint string, decode payloadDecoder) {
	start := time.Now()
	ctx, tr := s.tracer.Start(r.Context(), endpoint)
	if s.scoreDelay > 0 {
		time.Sleep(s.scoreDelay) // fault drill: inflate measured latency
	}
	status := s.collectOne(ctx, w, r, tr, decode)
	if status == "ok" {
		s.hists[endpoint].Record(time.Since(start))
	}
	s.tracer.Finish(tr, status)
}

// payloadDecoder turns a bounded request body into a payload, or
// reports the reject reason.
type payloadDecoder func(body []byte) (*fingerprint.Payload, rejectReason, error)

func decodeBinaryPayload(body []byte) (*fingerprint.Payload, rejectReason, error) {
	payload, err := fingerprint.UnmarshalBinary(body)
	if err != nil {
		reason := reasonDecode
		if errors.Is(err, fingerprint.ErrBadVersion) {
			reason = reasonBadVersion
		}
		return nil, reason, err
	}
	return payload, 0, nil
}

// jsonPayload is the sendBeacon-friendly JSON frame the script posts.
type jsonPayload struct {
	SessionID string  `json:"sid"`
	UserAgent string  `json:"ua"`
	Values    []int64 `json:"v"`
}

func decodeJSONPayload(body []byte) (*fingerprint.Payload, rejectReason, error) {
	var jp jsonPayload
	if err := json.Unmarshal(body, &jp); err != nil {
		return nil, reasonBadJSON, err
	}
	payload := &fingerprint.Payload{UserAgent: jp.UserAgent, Values: jp.Values}
	if sid, err := hex.DecodeString(jp.SessionID); err == nil && len(sid) == fingerprint.SessionIDSize {
		copy(payload.SessionID[:], sid)
	}
	return payload, 0, nil
}

// collectOne handles one ingest request under an open trace and returns
// the trace status ("ok" or the reject reason).
func (s *Server) collectOne(ctx context.Context, w http.ResponseWriter, r *http.Request, tr *obs.Trace, decode payloadDecoder) string {
	if s.limiter != nil && !s.limiter.Allow(clientKey(r)) {
		s.reject(w, tr, http.StatusTooManyRequests, reasonRateLimit, "rate limit exceeded")
		return reasonNames[reasonRateLimit]
	}
	endDecode := pipeline.StartSpan(ctx, "decode")
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxLen+1))
	if err != nil {
		endDecode()
		s.reject(w, tr, http.StatusBadRequest, reasonRead, "read: %v", err)
		return reasonNames[reasonRead]
	}
	if int64(len(body)) > s.maxLen {
		endDecode()
		s.reject(w, tr, http.StatusRequestEntityTooLarge, reasonTooLarge, "body over %d bytes", s.maxLen)
		return reasonNames[reasonTooLarge]
	}
	payload, reason, err := decode(body)
	endDecode()
	if err != nil {
		s.reject(w, tr, http.StatusBadRequest, reason, "payload: %v", err)
		return reasonNames[reason]
	}
	return s.score(ctx, w, tr, payload)
}

// clientKey is the rate-limit key: the remote IP, ignoring the
// ephemeral port.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// scoreBuf is the pooled per-request scratch of the score path.
type scoreBuf struct {
	vec     []float64
	scratch *core.Scratch
}

// score runs the model, writes the decision, and returns the trace
// status.
func (s *Server) score(ctx context.Context, w http.ResponseWriter, tr *obs.Trace, payload *fingerprint.Payload) string {
	dep := s.model.loadDeployed()
	model := dep.m
	if len(payload.Values) != model.Dim() {
		s.reject(w, tr, http.StatusBadRequest, reasonBadDim, "expected %d features, got %d", model.Dim(), len(payload.Values))
		return reasonNames[reasonBadDim]
	}
	buf, _ := s.bufs.Get().(*scoreBuf)
	if buf == nil {
		buf = &scoreBuf{scratch: model.NewScratch()}
	}
	defer s.bufs.Put(buf)
	buf.vec = fingerprint.ValuesToVectorInto(buf.vec, payload.Values)
	vec := buf.vec
	endScore := pipeline.StartSpan(ctx, "score")
	start := time.Now()
	result, err := model.ScoreStringWith(buf.scratch, vec, payload.UserAgent)
	elapsed := time.Since(start).Microseconds()
	endScore()
	if err != nil {
		s.reject(w, tr, http.StatusInternalServerError, reasonScore, "score: %v", err)
		return reasonNames[reasonScore]
	}
	if s.drift != nil {
		s.drift.Observe(vec)
	}

	d := Decision{
		SessionID:     hex.EncodeToString(payload.SessionID[:]),
		Cluster:       result.Cluster,
		Matched:       result.Matched,
		RiskFactor:    result.RiskFactor,
		Flagged:       result.Flagged(),
		ElapsedMicros: elapsed,
	}
	s.stats.received.Add(1)
	if d.Flagged {
		endRecord := pipeline.StartSpan(ctx, "record")
		s.stats.flagged.Add(1)
		s.store.Record(d)
		if s.journal != nil {
			if err := s.journal.Append(d); err != nil {
				s.logWarn(tr, "collect: journal append failed", "err", err.Error())
			}
		}
		endRecord()
	}
	if s.auditor != nil {
		endAudit := pipeline.StartSpan(ctx, "audit")
		endpoint := ""
		if tr != nil {
			endpoint = tr.Endpoint
		}
		// vec is a pooled buffer reused by the next request; the ledger
		// record must own its vector.
		owned := append([]float64(nil), vec...)
		if err := s.auditor.record(dep, tr, endpoint, d.SessionID, payload.UserAgent, owned, result); err != nil {
			s.logWarn(tr, "collect: audit record failed", "err", err.Error())
		}
		endAudit()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&d); err != nil {
		s.logWarn(tr, "collect: encode response failed", "err", err.Error())
	}
	return "ok"
}

// logWarn emits a structured warning carrying the trace ID when a trace
// is in flight.
func (s *Server) logWarn(tr *obs.Trace, msg string, args ...any) {
	if s.logger == nil {
		return
	}
	if tr != nil {
		args = append(args, obs.TraceIDKey, tr.ID.String())
	}
	s.logger.Warn(msg, args...)
}

// reject counts, logs, and answers one rejected request. tr may be nil
// for untraced endpoints (stats/flagged query validation).
func (s *Server) reject(w http.ResponseWriter, tr *obs.Trace, code int, reason rejectReason, format string, args ...any) {
	s.stats.rejected.Add(1)
	s.rejects[reason].Add(1)
	msg := fmt.Sprintf(format, args...)
	s.logWarn(tr, "collect: reject",
		"code", code, "reason", reasonNames[reason], "detail", msg)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, msg, code)
}

// handleFlagged returns retained flagged decisions, filtered by
// ?min_risk=N and sorted by descending risk factor — the fraud team's
// live queue.
func (s *Server) handleFlagged(w http.ResponseWriter, r *http.Request) {
	minRisk := 0
	if v := r.URL.Query().Get("min_risk"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.reject(w, nil, http.StatusBadRequest, reasonBadRequest, "bad min_risk %q", v)
			return
		}
		minRisk = n
	}
	all := s.store.All()
	out := all[:0]
	for _, d := range all {
		if d.RiskFactor >= minRisk {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RiskFactor != out[j].RiskFactor {
			return out[i].RiskFactor > out[j].RiskFactor
		}
		return out[i].SessionID < out[j].SessionID
	})
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		s.logWarn(nil, "collect: encode flagged failed", "err", err.Error())
	}
}

// Stats is the monitoring snapshot served at /v1/stats.
type Stats struct {
	Received     int64   `json:"received"`
	Rejected     int64   `json:"rejected"`
	Flagged      int64   `json:"flagged"`
	AvgScoreUs   float64 `json:"avg_score_us"`
	MaxScoreUs   int64   `json:"max_score_us"`
	StoreEntries int     `json:"store_entries"`
}

// Snapshot returns current counters. The latency figures derive from
// the endpoint histograms, whose Record publishes the sum before the
// count — so a snapshot's sum always covers at least the observations
// its count claims and the average can never be torn upward or divide
// by zero (the legacy avg-gauge bug class).
func (s *Server) Snapshot() Stats {
	st := Stats{
		Received:     s.stats.received.Load(),
		Rejected:     s.stats.rejected.Load(),
		Flagged:      s.stats.flagged.Load(),
		StoreEntries: s.store.Len(),
	}
	var n uint64
	var sumUs float64
	for _, h := range s.hists {
		c := h.Count() // count before sum: see Record's ordering
		n += c
		sumUs += float64(h.Sum().Nanoseconds()) / 1e3
		if m := h.Max().Microseconds(); m > st.MaxScoreUs {
			st.MaxScoreUs = m
		}
	}
	if n > 0 {
		st.AvgScoreUs = sumUs / float64(n)
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Snapshot()); err != nil {
		s.logWarn(nil, "collect: encode stats failed", "err", err.Error())
	}
}

// MemoryStore retains the most recent flagged decisions in a sharded
// ring, safe for concurrent use. Production would forward to the risk
// pipeline; the reproduction keeps them queryable.
type MemoryStore struct {
	shards [16]storeShard
	cap    int
}

type storeShard struct {
	mu      sync.Mutex
	entries []Decision
	next    int
	full    bool
}

// NewMemoryStore bounds the total retained decisions (rounded up to a
// multiple of the shard count).
func NewMemoryStore(capacity int) *MemoryStore {
	if capacity < 16 {
		capacity = 16
	}
	return &MemoryStore{cap: (capacity + 15) / 16}
}

func (m *MemoryStore) shardFor(sessionID string) *storeShard {
	h := uint32(2166136261)
	for i := 0; i < len(sessionID); i++ {
		h = (h ^ uint32(sessionID[i])) * 16777619
	}
	return &m.shards[h%16]
}

// Record stores a decision.
func (m *MemoryStore) Record(d Decision) {
	sh := m.shardFor(d.SessionID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.entries) < m.cap {
		sh.entries = append(sh.entries, d)
		return
	}
	sh.entries[sh.next] = d
	sh.next = (sh.next + 1) % m.cap
	sh.full = true
}

// Len counts retained decisions.
func (m *MemoryStore) Len() int {
	n := 0
	for i := range m.shards {
		m.shards[i].mu.Lock()
		n += len(m.shards[i].entries)
		m.shards[i].mu.Unlock()
	}
	return n
}

// All returns a copy of every retained decision (unspecified order).
func (m *MemoryStore) All() []Decision {
	var out []Decision
	for i := range m.shards {
		m.shards[i].mu.Lock()
		out = append(out, m.shards[i].entries...)
		m.shards[i].mu.Unlock()
	}
	return out
}
