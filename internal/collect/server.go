// Package collect is the web-scale deployment tier of Browser Polygraph:
// an HTTP service that serves the fingerprint-collection script, ingests
// ≤1 KB fingerprint payloads, scores them against the trained model in
// real time (paper §3 budget: 100 ms; measured cost: microseconds), and
// retains flagged sessions for the fraud team. It also provides a client
// and a streaming scorer for batch replay.
package collect

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"polygraph/internal/core"
	"polygraph/internal/fingerprint"
	"polygraph/internal/pipeline"
)

// modelHolder supports hot model swaps: the drift detector's retrain
// loop produces a new model, and the serving tier adopts it without
// downtime. Scoring paths load the pointer once per request, so a swap
// never tears a request.
type modelHolder struct {
	ptr atomic.Pointer[core.Model]
}

func (h *modelHolder) load() *core.Model { return h.ptr.Load() }

// Decision is the scoring outcome returned to the risk system.
type Decision struct {
	SessionID  string `json:"session_id"`
	Cluster    int    `json:"cluster"`
	Matched    bool   `json:"matched"`
	RiskFactor int    `json:"risk_factor"`
	Flagged    bool   `json:"flagged"`
	// ElapsedMicros is the server-side scoring latency in microseconds.
	ElapsedMicros int64 `json:"elapsed_us"`
}

// Config parameterizes the server.
type Config struct {
	// Model scores sessions; required.
	Model *core.Model
	// Store retains flagged decisions; nil uses a fresh MemoryStore.
	Store *MemoryStore
	// MaxBodyBytes caps request bodies; 0 uses the paper's 1 KB budget
	// (plus framing slack for the JSON variant).
	MaxBodyBytes int64
	// RateLimitPerSec enables per-client-IP token-bucket limiting on
	// the ingestion endpoints (0 disables). RateBurst defaults to
	// 2× the rate.
	RateLimitPerSec float64
	RateBurst       int
	// Journal, when set, durably records every flagged decision.
	Journal *Journal
	// Logger receives request errors; nil discards.
	Logger *log.Logger
}

// Server is the collection/scoring HTTP service. Create with NewServer;
// it implements http.Handler.
type Server struct {
	model   modelHolder
	store   *MemoryStore
	journal *Journal
	maxLen  int64
	logger  *log.Logger
	mux     *http.ServeMux

	stats serverStats

	// trainMu guards trainStages, the per-stage timings of the last
	// (re)train that produced the deployed model; exported at /metrics.
	trainMu     sync.RWMutex
	trainStages []pipeline.Timing
}

type serverStats struct {
	received   atomic.Int64
	rejected   atomic.Int64
	flagged    atomic.Int64
	totalUsecs atomic.Int64
	maxUsecs   atomic.Int64
}

// NewServer validates the config and builds the service.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, errors.New("collect: Config.Model is required")
	}
	maxLen := cfg.MaxBodyBytes
	if maxLen == 0 {
		maxLen = 4 * fingerprint.MaxPayloadSize // JSON framing slack
	}
	store := cfg.Store
	if store == nil {
		store = NewMemoryStore(4096)
	}
	s := &Server{
		store:   store,
		journal: cfg.Journal,
		maxLen:  maxLen,
		logger:  cfg.Logger,
		mux:     http.NewServeMux(),
	}
	s.model.ptr.Store(cfg.Model)
	s.mux.HandleFunc("GET /script.js", s.handleScript)
	ingest := func(h http.HandlerFunc) http.Handler {
		if cfg.RateLimitPerSec <= 0 {
			return h
		}
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = int(2 * cfg.RateLimitPerSec)
		}
		return NewRateLimiter(cfg.RateLimitPerSec, burst).Middleware(h)
	}
	s.mux.Handle("POST /v1/collect", ingest(s.handleCollectBinary))
	s.mux.Handle("POST /v1/collect-json", ingest(s.handleCollectJSON))
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/flagged", s.handleFlagged)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Store exposes the flagged-session store.
func (s *Server) Store() *MemoryStore { return s.store }

// SwapModel atomically replaces the scoring model — the deployment step
// of the §6.6 retraining loop. In-flight requests finish on the model
// they started with; subsequent requests (and the served script, if the
// feature set changed) use the new one.
func (s *Server) SwapModel(m *core.Model) error {
	if m == nil {
		return errors.New("collect: SwapModel with nil model")
	}
	s.model.ptr.Store(m)
	return nil
}

// Model returns the currently deployed model.
func (s *Server) Model() *core.Model { return s.model.load() }

// SetTrainStages records the stage timings of the training run that
// produced the deployed model; /metrics exports them. Call it alongside
// SwapModel (or at startup) whenever a TrainReport is available.
func (s *Server) SetTrainStages(stages []pipeline.Timing) {
	copied := append([]pipeline.Timing(nil), stages...)
	s.trainMu.Lock()
	s.trainStages = copied
	s.trainMu.Unlock()
}

// TrainStages returns a copy of the last recorded training-stage
// timings (nil when none were ever set).
func (s *Server) TrainStages() []pipeline.Timing {
	s.trainMu.RLock()
	defer s.trainMu.RUnlock()
	return append([]pipeline.Timing(nil), s.trainStages...)
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

func (s *Server) handleScript(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/javascript")
	w.Header().Set("Cache-Control", "public, max-age=3600")
	io.WriteString(w, CollectionScript(s.model.load().Features, "/v1/collect-json"))
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleCollectBinary ingests the compact wire format.
func (s *Server) handleCollectBinary(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxLen+1))
	if err != nil {
		s.reject(w, http.StatusBadRequest, "read: %v", err)
		return
	}
	if int64(len(body)) > s.maxLen {
		s.reject(w, http.StatusRequestEntityTooLarge, "body over %d bytes", s.maxLen)
		return
	}
	payload, err := fingerprint.UnmarshalBinary(body)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "payload: %v", err)
		return
	}
	s.score(w, payload)
}

// jsonPayload is the sendBeacon-friendly JSON frame the script posts.
type jsonPayload struct {
	SessionID string  `json:"sid"`
	UserAgent string  `json:"ua"`
	Values    []int64 `json:"v"`
}

func (s *Server) handleCollectJSON(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxLen+1))
	if err != nil {
		s.reject(w, http.StatusBadRequest, "read: %v", err)
		return
	}
	if int64(len(body)) > s.maxLen {
		s.reject(w, http.StatusRequestEntityTooLarge, "body over %d bytes", s.maxLen)
		return
	}
	var jp jsonPayload
	if err := json.Unmarshal(body, &jp); err != nil {
		s.reject(w, http.StatusBadRequest, "json: %v", err)
		return
	}
	payload := &fingerprint.Payload{UserAgent: jp.UserAgent, Values: jp.Values}
	if sid, err := hex.DecodeString(jp.SessionID); err == nil && len(sid) == fingerprint.SessionIDSize {
		copy(payload.SessionID[:], sid)
	}
	s.score(w, payload)
}

// score runs the model and writes the decision.
func (s *Server) score(w http.ResponseWriter, payload *fingerprint.Payload) {
	model := s.model.load()
	if len(payload.Values) != model.Dim() {
		s.reject(w, http.StatusBadRequest, "expected %d features, got %d", model.Dim(), len(payload.Values))
		return
	}
	start := time.Now()
	result, err := model.ScoreString(fingerprint.ValuesToVector(payload.Values), payload.UserAgent)
	if err != nil {
		s.reject(w, http.StatusInternalServerError, "score: %v", err)
		return
	}
	elapsed := time.Since(start).Microseconds()

	d := Decision{
		SessionID:     hex.EncodeToString(payload.SessionID[:]),
		Cluster:       result.Cluster,
		Matched:       result.Matched,
		RiskFactor:    result.RiskFactor,
		Flagged:       result.Flagged(),
		ElapsedMicros: elapsed,
	}
	// Order matters for Snapshot's consistency loop: the latency sum is
	// published before the received count, so a reader that observes a
	// stable received count has a totalUsecs covering at least all the
	// requests it counted (AvgScoreUs never divides by more requests
	// than contributed latency).
	s.stats.totalUsecs.Add(elapsed)
	s.stats.received.Add(1)
	for {
		cur := s.stats.maxUsecs.Load()
		if elapsed <= cur || s.stats.maxUsecs.CompareAndSwap(cur, elapsed) {
			break
		}
	}
	if d.Flagged {
		s.stats.flagged.Add(1)
		s.store.Record(d)
		if s.journal != nil {
			if err := s.journal.Append(d); err != nil {
				s.logf("collect: journal: %v", err)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&d); err != nil {
		s.logf("collect: encode response: %v", err)
	}
}

func (s *Server) reject(w http.ResponseWriter, code int, format string, args ...any) {
	s.stats.rejected.Add(1)
	msg := fmt.Sprintf(format, args...)
	s.logf("collect: reject %d: %s", code, msg)
	http.Error(w, msg, code)
}

// handleFlagged returns retained flagged decisions, filtered by
// ?min_risk=N and sorted by descending risk factor — the fraud team's
// live queue.
func (s *Server) handleFlagged(w http.ResponseWriter, r *http.Request) {
	minRisk := 0
	if v := r.URL.Query().Get("min_risk"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.reject(w, http.StatusBadRequest, "bad min_risk %q", v)
			return
		}
		minRisk = n
	}
	all := s.store.All()
	out := all[:0]
	for _, d := range all {
		if d.RiskFactor >= minRisk {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RiskFactor != out[j].RiskFactor {
			return out[i].RiskFactor > out[j].RiskFactor
		}
		return out[i].SessionID < out[j].SessionID
	})
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		s.logf("collect: encode flagged: %v", err)
	}
}

// Stats is the monitoring snapshot served at /v1/stats.
type Stats struct {
	Received     int64   `json:"received"`
	Rejected     int64   `json:"rejected"`
	Flagged      int64   `json:"flagged"`
	AvgScoreUs   float64 `json:"avg_score_us"`
	MaxScoreUs   int64   `json:"max_score_us"`
	StoreEntries int     `json:"store_entries"`
}

// Snapshot returns current counters. Each counter is individually
// atomic, but a naive multi-load under a concurrent ingest hammer can
// pair a received count with a latency total from a different instant
// (a torn snapshot: AvgScoreUs computed from mismatched halves). The
// loop re-reads the received counter after gathering the rest and
// retries while it moved, bounded so a sustained hammer degrades to a
// best-effort snapshot instead of livelocking the stats endpoint.
func (s *Server) Snapshot() Stats {
	for attempt := 0; ; attempt++ {
		received := s.stats.received.Load()
		total := s.stats.totalUsecs.Load()
		st := Stats{
			Received:     received,
			Rejected:     s.stats.rejected.Load(),
			Flagged:      s.stats.flagged.Load(),
			MaxScoreUs:   s.stats.maxUsecs.Load(),
			StoreEntries: s.store.Len(),
		}
		if received > 0 {
			st.AvgScoreUs = float64(total) / float64(received)
		}
		if s.stats.received.Load() == received || attempt == 3 {
			return st
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Snapshot()); err != nil {
		s.logf("collect: encode stats: %v", err)
	}
}

// MemoryStore retains the most recent flagged decisions in a sharded
// ring, safe for concurrent use. Production would forward to the risk
// pipeline; the reproduction keeps them queryable.
type MemoryStore struct {
	shards [16]storeShard
	cap    int
}

type storeShard struct {
	mu      sync.Mutex
	entries []Decision
	next    int
	full    bool
}

// NewMemoryStore bounds the total retained decisions (rounded up to a
// multiple of the shard count).
func NewMemoryStore(capacity int) *MemoryStore {
	if capacity < 16 {
		capacity = 16
	}
	return &MemoryStore{cap: (capacity + 15) / 16}
}

func (m *MemoryStore) shardFor(sessionID string) *storeShard {
	h := uint32(2166136261)
	for i := 0; i < len(sessionID); i++ {
		h = (h ^ uint32(sessionID[i])) * 16777619
	}
	return &m.shards[h%16]
}

// Record stores a decision.
func (m *MemoryStore) Record(d Decision) {
	sh := m.shardFor(d.SessionID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.entries) < m.cap {
		sh.entries = append(sh.entries, d)
		return
	}
	sh.entries[sh.next] = d
	sh.next = (sh.next + 1) % m.cap
	sh.full = true
}

// Len counts retained decisions.
func (m *MemoryStore) Len() int {
	n := 0
	for i := range m.shards {
		m.shards[i].mu.Lock()
		n += len(m.shards[i].entries)
		m.shards[i].mu.Unlock()
	}
	return n
}

// All returns a copy of every retained decision (unspecified order).
func (m *MemoryStore) All() []Decision {
	var out []Decision
	for i := range m.shards {
		m.shards[i].mu.Lock()
		out = append(out, m.shards[i].entries...)
		m.shards[i].mu.Unlock()
	}
	return out
}
