package collect

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Prometheus text-exposition metrics for the scoring service. Stdlib
// only: the format is plain text, and all counters already exist on the
// server. Mounted at GET /metrics.

// writeMetric emits one metric with HELP/TYPE headers.
func writeMetric(w io.Writer, name, help, typ string, value float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, value)
}

// writeLabeledFamily emits one metric family whose series differ only in
// one label value (the common case for the per-stage families below).
// Label values are escaped per the text exposition format.
func writeLabeledFamily(w io.Writer, name, help, typ, label string, series []labeledValue) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range series {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %g\n", name, label, escapeLabel(s.labelValue), s.value)
	}
}

type labeledValue struct {
	labelValue string
	value      float64
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	st := s.Snapshot()
	writeMetric(w, "polygraph_collections_total",
		"Fingerprint payloads scored.", "counter", float64(st.Received))
	writeMetric(w, "polygraph_rejected_total",
		"Malformed or oversized requests rejected.", "counter", float64(st.Rejected))
	writeMetric(w, "polygraph_flagged_total",
		"Sessions flagged as suspicious.", "counter", float64(st.Flagged))
	writeMetric(w, "polygraph_score_avg_microseconds",
		"Mean server-side scoring latency.", "gauge", st.AvgScoreUs)
	writeMetric(w, "polygraph_score_max_microseconds",
		"Max server-side scoring latency.", "gauge", float64(st.MaxScoreUs))
	writeMetric(w, "polygraph_store_entries",
		"Flagged decisions retained in memory.", "gauge", float64(st.StoreEntries))
	model := s.model.load()
	writeMetric(w, "polygraph_model_clusters",
		"Clusters in the deployed model.", "gauge", float64(model.KMeans.K))
	writeMetric(w, "polygraph_model_accuracy",
		"Training accuracy of the deployed model.", "gauge", model.Accuracy)

	// Per-stage timings of the (re)train that produced the deployed
	// model, when the operator recorded them via SetTrainStages.
	stages := s.TrainStages()
	if len(stages) == 0 {
		return
	}
	durations := make([]labeledValue, len(stages))
	rowsIn := make([]labeledValue, len(stages))
	rowsOut := make([]labeledValue, len(stages))
	for i, st := range stages {
		durations[i] = labeledValue{st.Name, st.Duration.Seconds()}
		rowsIn[i] = labeledValue{st.Name, float64(st.RowsIn)}
		rowsOut[i] = labeledValue{st.Name, float64(st.RowsOut)}
	}
	writeLabeledFamily(w, "polygraph_train_stage_duration_seconds",
		"Wall time of each pipeline stage in the last (re)train.", "gauge", "stage", durations)
	writeLabeledFamily(w, "polygraph_train_stage_rows_in",
		"Rows entering each pipeline stage in the last (re)train.", "gauge", "stage", rowsIn)
	writeLabeledFamily(w, "polygraph_train_stage_rows_out",
		"Rows leaving each pipeline stage in the last (re)train.", "gauge", "stage", rowsOut)
}
