package collect

import (
	"fmt"
	"io"
	"net/http"
)

// Prometheus text-exposition metrics for the scoring service. Stdlib
// only: the format is plain text, and all counters already exist on the
// server. Mounted at GET /metrics.

// writeMetric emits one metric with HELP/TYPE headers.
func writeMetric(w io.Writer, name, help, typ string, value float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, value)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	st := s.Snapshot()
	writeMetric(w, "polygraph_collections_total",
		"Fingerprint payloads scored.", "counter", float64(st.Received))
	writeMetric(w, "polygraph_rejected_total",
		"Malformed or oversized requests rejected.", "counter", float64(st.Rejected))
	writeMetric(w, "polygraph_flagged_total",
		"Sessions flagged as suspicious.", "counter", float64(st.Flagged))
	writeMetric(w, "polygraph_score_avg_microseconds",
		"Mean server-side scoring latency.", "gauge", st.AvgScoreUs)
	writeMetric(w, "polygraph_score_max_microseconds",
		"Max server-side scoring latency.", "gauge", float64(st.MaxScoreUs))
	writeMetric(w, "polygraph_store_entries",
		"Flagged decisions retained in memory.", "gauge", float64(st.StoreEntries))
	model := s.model.load()
	writeMetric(w, "polygraph_model_clusters",
		"Clusters in the deployed model.", "gauge", float64(model.KMeans.K))
	writeMetric(w, "polygraph_model_accuracy",
		"Training accuracy of the deployed model.", "gauge", model.Accuracy)
}
