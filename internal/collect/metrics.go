package collect

import (
	"io"
	"net/http"
	"strings"
	"time"

	"polygraph/internal/audit"
	"polygraph/internal/obs"
)

// Prometheus text-exposition metrics for the scoring service, composed
// from internal/obs's writers. Stdlib only: the format is plain text,
// and every value already lives on an atomic counter or histogram.
// Mounted at GET /metrics; obs.Lint checks the output in CI
// (cmd/promlint) and in this package's tests.

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.writeMetricsTo(w)
}

// MetricsText renders the full exposition in-process — the SLO engine's
// scrape source and the serving replica's bundle capture both read the
// page without a loopback round trip.
func (s *Server) MetricsText() string {
	var b strings.Builder
	s.writeMetricsTo(&b)
	return b.String()
}

func (s *Server) writeMetricsTo(w io.Writer) {
	st := s.Snapshot()
	obs.WriteBuildInfo(w)
	obs.WriteRuntimeMetrics(w)
	obs.WriteMetric(w, "polygraph_collections_total",
		"Fingerprint payloads scored.", "counter", float64(st.Received))
	obs.WriteMetric(w, "polygraph_flagged_total",
		"Sessions flagged as suspicious.", "counter", float64(st.Flagged))

	// Rejects broken out by cause. Every reason is always present
	// (zeros included) so rate() works from the first scrape; the sum
	// across reasons is the legacy total.
	reasons := make([]obs.LabeledValue, numReasons)
	for i := range reasons {
		reasons[i] = obs.LabeledValue{Label: reasonNames[i], Value: float64(s.rejects[i].Load())}
	}
	obs.WriteLabeledFamily(w, "polygraph_rejected_total",
		"Rejected requests by cause.", "counter", "reason", reasons)

	// Per-endpoint request-handling latency of scored requests, as a
	// real histogram family. The avg/max gauges below are kept during
	// deprecation, now derived from the same histograms (guarded
	// against the zero-received torn-stats edge by construction).
	series := []obs.HistogramSeries{
		obs.HistogramSnapshot(EndpointBinary, s.hists[EndpointBinary]),
		obs.HistogramSnapshot(EndpointJSON, s.hists[EndpointJSON]),
		obs.HistogramSnapshot(EndpointBatch, s.hists[EndpointBatch]),
	}
	if tcp := s.tcp.Load(); tcp != nil {
		series = append(series, obs.HistogramSnapshot(EndpointTCP, &tcp.hist))
	}
	obs.WriteHistogramFamily(w, "polygraph_score_duration_microseconds",
		"Request-handling latency of scored requests per endpoint, in microseconds.",
		"endpoint", series)
	obs.WriteMetric(w, "polygraph_score_avg_microseconds",
		"Mean request-handling latency (deprecated: use the duration histogram).",
		"gauge", st.AvgScoreUs)
	obs.WriteMetric(w, "polygraph_score_max_microseconds",
		"Max request-handling latency (deprecated: use the duration histogram).",
		"gauge", float64(st.MaxScoreUs))

	obs.WriteMetric(w, "polygraph_store_entries",
		"Flagged decisions retained in memory.", "gauge", float64(st.StoreEntries))
	model := s.model.load()
	obs.WriteMetric(w, "polygraph_model_clusters",
		"Clusters in the deployed model.", "gauge", float64(model.KMeans.K))
	obs.WriteMetric(w, "polygraph_model_accuracy",
		"Training accuracy of the deployed model.", "gauge", model.Accuracy)
	trainedAt := 0.0
	if t := s.ModelTrainedAt(); !t.IsZero() {
		trainedAt = float64(t.UnixNano()) / float64(time.Second)
	}
	obs.WriteMetric(w, "polygraph_model_trained_timestamp_seconds",
		"When the deployed model was trained (unix seconds; 0 = unknown).",
		"gauge", trainedAt)

	if tcp := s.tcp.Load(); tcp != nil {
		obs.WriteMetric(w, "polygraph_tcp_scored_total",
			"Payload frames scored over the TCP batch listener.", "counter", float64(tcp.Scored()))
		obs.WriteMetric(w, "polygraph_tcp_flagged_total",
			"TCP-scored frames whose verdict was flagged.", "counter", float64(tcp.Flagged()))
		obs.WriteMetric(w, "polygraph_tcp_bad_handshakes_total",
			"TCP connections dropped before or at the hello handshake.", "counter", float64(tcp.BadConns()))
		obs.WriteMetric(w, "polygraph_tcp_bad_frames_total",
			"TCP frames rejected after the handshake and answered with the error flag.",
			"counter", float64(tcp.BadFrames()))
		// Batch sizes ride the microsecond histogram scale: le=N reads
		// as a batch of N frames and _sum is total coalesced frames.
		obs.WriteHistogramFamily(w, "polygraph_tcp_batch_size",
			"Coalesced TCP batch sizes in frames (recorded on the microsecond scale).",
			"endpoint", []obs.HistogramSeries{obs.HistogramSnapshot(EndpointTCP, tcp.BatchHist())})
	}

	// Audit-ledger families are always present (zeros when no ledger is
	// configured) so the promlint -require list holds for every
	// deployment shape. The TCP listener shares the HTTP server's
	// ledger, so its records are already in these counters.
	var ac audit.Counters
	if s.auditor != nil {
		ac = s.auditor.ledger.Counters()
	}
	obs.WriteMetric(w, "polygraph_audit_records_total",
		"Decisions durably recorded in the audit ledger.", "counter", float64(ac.Records))
	obs.WriteMetric(w, "polygraph_audit_dropped_total",
		"Decisions not recorded: benign sampling plus append failures.", "counter", float64(ac.Dropped))
	obs.WriteMetric(w, "polygraph_audit_bytes_total",
		"Framed bytes appended to the audit ledger.", "counter", float64(ac.Bytes))

	if s.drift != nil {
		s.drift.WriteMetrics(w)
	}

	// Per-stage timings of the (re)train that produced the deployed
	// model, when the operator recorded them via SetTrainStages.
	if stages := s.TrainStages(); len(stages) > 0 {
		durations := make([]obs.LabeledValue, len(stages))
		rowsIn := make([]obs.LabeledValue, len(stages))
		rowsOut := make([]obs.LabeledValue, len(stages))
		for i, st := range stages {
			durations[i] = obs.LabeledValue{Label: st.Name, Value: st.Duration.Seconds()}
			rowsIn[i] = obs.LabeledValue{Label: st.Name, Value: float64(st.RowsIn)}
			rowsOut[i] = obs.LabeledValue{Label: st.Name, Value: float64(st.RowsOut)}
		}
		obs.WriteLabeledFamily(w, "polygraph_train_stage_duration_seconds",
			"Wall time of each pipeline stage in the last (re)train.", "gauge", "stage", durations)
		obs.WriteLabeledFamily(w, "polygraph_train_stage_rows_in",
			"Rows entering each pipeline stage in the last (re)train.", "gauge", "stage", rowsIn)
		obs.WriteLabeledFamily(w, "polygraph_train_stage_rows_out",
			"Rows leaving each pipeline stage in the last (re)train.", "gauge", "stage", rowsOut)
	}

	// The SLO engine's families ride the same scrape when one is
	// attached. The engine snapshots this exposition on its own tick;
	// these gauges reflect the last completed evaluation, so including
	// them here cannot recurse.
	if e := s.slo.Load(); e != nil {
		e.WriteMetrics(w)
	}
}
