package collect

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"polygraph/internal/fingerprint"
	"polygraph/internal/obs"
	"polygraph/internal/pipeline"
	"polygraph/internal/ua"
)

// scrapeMetrics fetches the /metrics page of a test server.
func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsExpositionLints serves real traffic (HTTP + TCP + drift +
// train stages) and requires the full /metrics page to pass the
// exposition linter with every contract family present.
func TestMetricsExpositionLints(t *testing.T) {
	m, d := testModel(t)
	driftMon, err := obs.NewDriftMonitor(obs.DriftConfig{
		Features:   fingerprint.Names(m.Features),
		MinSamples: 10,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{Model: m, Drift: driftMon, TraceSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetModelTrainedAt(time.Unix(1700000000, 0))
	srv.SetTrainStages([]pipeline.Timing{{Name: "scale", Duration: 2 * time.Millisecond, RowsIn: 10, RowsOut: 10}})
	tcpSrv, err := NewTCPServer(Config{Model: m, Tracer: srv.Tracer(), Drift: driftMon})
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachTCP(tcpSrv)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// One scored request so histogram and counters move.
	client := NewClient(ts.URL)
	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	for i := 0; i < 12; i++ {
		if _, err := client.Submit(context.Background(), honest); err != nil {
			t.Fatal(err)
		}
	}
	// One reject so polygraph_rejected_total moves.
	resp, err := http.Post(ts.URL+"/v1/collect", "application/octet-stream", strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// A drift evaluation (self-observed vectors vs... baseline unset →
	// first call captures, so call twice) populates the PSI family.
	if _, err := driftMon.Evaluate(); err == nil {
		t.Fatal("first drift evaluation should capture the baseline and report not-ready")
	}
	if _, err := driftMon.Evaluate(); err != nil {
		t.Fatal(err)
	}

	expo := scrapeMetrics(t, ts.URL)
	problems, err := obs.Lint(strings.NewReader(expo),
		"polygraph_build_info",
		"polygraph_collections_total",
		"polygraph_rejected_total",
		"polygraph_score_duration_microseconds",
		"polygraph_model_trained_timestamp_seconds",
		"polygraph_feature_psi",
		"polygraph_drift_alert",
		"polygraph_tcp_scored_total",
		"polygraph_tcp_flagged_total",
		"polygraph_tcp_bad_handshakes_total",
		"polygraph_tcp_bad_frames_total",
		"polygraph_tcp_batch_size",
		"polygraph_train_stage_duration_seconds",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("/metrics fails lint:\n%v\n--- exposition ---\n%s", problems, expo)
	}
	if !strings.Contains(expo, `polygraph_rejected_total{reason="decode"} 1`) {
		t.Fatalf("decode reject not counted:\n%s", expo)
	}
	if !strings.Contains(expo, "polygraph_model_trained_timestamp_seconds 1.7e+09") {
		t.Fatalf("trained timestamp missing:\n%s", expo)
	}
}

// TestTraceIDPropagation pins the deterministic trace-ID contract: the
// ID in the slow-request log, the ID in /debug/traces, and the ID
// predicted by an independent obs.NewIDGen with the same seed must all
// agree.
func TestTraceIDPropagation(t *testing.T) {
	m, d := testModel(t)
	var logBuf bytes.Buffer
	const seed = 42
	srv, err := NewServer(Config{
		Model:       m,
		Logger:      obs.NewLogger(&syncWriter{w: &logBuf}, true),
		TraceSeed:   seed,
		SlowRequest: time.Nanosecond, // every request logs as slow
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := NewClient(ts.URL)
	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	if _, err := client.Submit(context.Background(), honest); err != nil {
		t.Fatal(err)
	}

	want := obs.NewIDGen(seed).Next().String()

	// /debug/traces must report the same ID with its spans.
	resp, err := http.Get(ts.URL + "/debug/traces?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Last []struct {
			ID       string `json:"id"`
			Endpoint string `json:"endpoint"`
			Status   string `json:"status"`
			Spans    []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"last"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if len(page.Last) != 1 {
		t.Fatalf("expected 1 trace, got %d", len(page.Last))
	}
	tr := page.Last[0]
	if tr.ID != want {
		t.Fatalf("/debug/traces ID %s, predicted %s", tr.ID, want)
	}
	if tr.Endpoint != EndpointBinary || tr.Status != "ok" {
		t.Fatalf("trace %+v", tr)
	}
	spanNames := map[string]bool{}
	for _, sp := range tr.Spans {
		spanNames[sp.Name] = true
	}
	if !spanNames["decode"] || !spanNames["score"] {
		t.Fatalf("trace spans %v missing decode/score", tr.Spans)
	}

	// The slow-request log line carries the same trace_id.
	var rec struct {
		Msg     string `json:"msg"`
		TraceID string `json:"trace_id"`
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if json.Unmarshal([]byte(line), &rec) == nil && rec.Msg == "slow request" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no slow-request record in log: %q", logBuf.String())
	}
	if rec.TraceID != want {
		t.Fatalf("slow log trace_id %s, predicted %s", rec.TraceID, want)
	}
}

// syncWriter serializes concurrent slog writes in tests.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestRejectReasonTaxonomy drives each reject cause and checks the
// labeled counter moves on the right series.
func TestRejectReasonTaxonomy(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(path, body string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/octet-stream", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	post("/v1/collect", "garbage")    // decode
	post("/v1/collect-json", "{nope") // bad_json
	// bad_version: a valid frame with a bumped version byte.
	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	enc, err := honest.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	enc[2] = 99
	post("/v1/collect", string(enc))

	expo := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`polygraph_rejected_total{reason="decode"} 1`,
		`polygraph_rejected_total{reason="bad_json"} 1`,
		`polygraph_rejected_total{reason="bad_version"} 1`,
		`polygraph_rejected_total{reason="rate_limit"} 0`,
	} {
		if !strings.Contains(expo, want) {
			t.Fatalf("missing %q in:\n%s", want, expo)
		}
	}
}

// TestAvgGaugeZeroTraffic pins the torn-stats fix: with zero scored
// requests the avg gauge must be exactly 0, not NaN or garbage.
func TestAvgGaugeZeroTraffic(t *testing.T) {
	m, _ := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Snapshot()
	if st.AvgScoreUs != 0 || st.MaxScoreUs != 0 {
		t.Fatalf("zero-traffic stats: avg=%v max=%v", st.AvgScoreUs, st.MaxScoreUs)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	expo := scrapeMetrics(t, ts.URL)
	if !strings.Contains(expo, "polygraph_score_avg_microseconds 0\n") {
		t.Fatalf("zero-traffic avg gauge not 0:\n%s", expo)
	}
}

// TestTraceRingSwapModelHammer runs concurrent scoring traffic,
// /debug/traces readers, /metrics scrapes, and SwapModel calls; run
// with -race this is the data-race gate for the observability paths.
func TestTraceRingSwapModelHammer(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewServer(Config{Model: m, TraceRingSize: 8, TraceSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	body, err := honest.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	iters := 50
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers*3+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Post(ts.URL+"/v1/collect", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("score returned %d", resp.StatusCode)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(ts.URL + "/debug/traces")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := srv.SwapModel(m); err != nil {
				errs <- err
				return
			}
			srv.SetModelTrainedAt(time.Now())
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.Tracer().Ring().Len() == 0 {
		t.Fatal("no traces retained after hammer")
	}
}
