package collect

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"polygraph/internal/audit"
	"polygraph/internal/fingerprint"
	"polygraph/internal/ua"
)

// auditedServer builds an HTTP server wired to a fresh ledger in a temp
// dir, returning both plus the test base URL.
func auditedServer(t *testing.T, sampleBenign int) (*Server, *audit.Ledger, *httptest.Server) {
	t.Helper()
	m, _ := testModel(t)
	led, err := audit.Open(audit.Config{Dir: t.TempDir(), SampleBenign: sampleBenign})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{Model: m, Audit: led})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		if err := led.Close(); err != nil {
			t.Errorf("close ledger: %v", err)
		}
	})
	return srv, led, ts
}

func TestHTTPScoreRecordsAudit(t *testing.T) {
	srv, led, ts := auditedServer(t, 1)
	_, d := testModel(t)
	client := NewClient(ts.URL)

	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	lying := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110})
	if _, err := client.Submit(context.Background(), honest); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(context.Background(), lying); err != nil {
		t.Fatal(err)
	}

	c := led.Counters()
	if c.Records != 2 || c.Dropped != 0 {
		t.Fatalf("counters = %+v, want 2 records 0 dropped", c)
	}
	recent := led.Recent(10, "", "")
	if len(recent) != 2 {
		t.Fatalf("recent has %d records", len(recent))
	}
	// Newest first: the lying session leads.
	if !recent[0].Verdict.Flagged || recent[1].Verdict.Flagged {
		t.Fatalf("verdict order wrong: %+v / %+v", recent[0].Verdict, recent[1].Verdict)
	}
	wantHash := srv.ModelHash()
	if wantHash == "" {
		t.Fatal("server model hash empty")
	}
	for i, rec := range recent {
		if rec.ModelHash != wantHash {
			t.Fatalf("record %d model hash %q != deployed %q", i, rec.ModelHash, wantHash)
		}
		if rec.TraceID == "" {
			t.Fatalf("record %d has no trace ID", i)
		}
		if rec.Endpoint != EndpointBinary {
			t.Fatalf("record %d endpoint = %q", i, rec.Endpoint)
		}
		if len(rec.Vector) == 0 {
			t.Fatalf("record %d vector empty", i)
		}
		if rec.Explanation == nil {
			t.Fatalf("record %d has no explanation", i)
		}
		if rec.Explanation.Verdict != rec.Verdict {
			t.Fatalf("record %d verdict disagrees with explanation", i)
		}
	}
	if recent[0].Verdict.RiskFactor != ua.MaxDistance {
		t.Fatalf("flagged record risk = %d", recent[0].Verdict.RiskFactor)
	}
}

func TestHTTPAuditSampling(t *testing.T) {
	_, led, ts := auditedServer(t, 3)
	_, d := testModel(t)
	client := NewClient(ts.URL)

	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	lying := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110})
	for i := 0; i < 6; i++ {
		if _, err := client.Submit(context.Background(), honest); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Submit(context.Background(), lying); err != nil {
		t.Fatal(err)
	}

	c := led.Counters()
	// 6 benign at 1-in-3 → 2 recorded + 4 dropped; flagged always recorded.
	if c.Records != 3 || c.Dropped != 4 {
		t.Fatalf("counters = %+v, want 3 records 4 dropped", c)
	}
	if c.Records+c.Dropped != 7 {
		t.Fatalf("records+dropped = %d, want 7 scored", c.Records+c.Dropped)
	}
}

func fetchJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, body)
		}
	}
	return resp.StatusCode
}

func TestDecisionsEndpoint(t *testing.T) {
	_, _, ts := auditedServer(t, 1)
	_, d := testModel(t)
	client := NewClient(ts.URL)

	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	lying := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110})
	for _, p := range []*fingerprint.Payload{honest, lying, honest} {
		if _, err := client.Submit(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}

	var all []audit.Record
	if code := fetchJSON(t, ts.URL+"/debug/decisions", &all); code != http.StatusOK {
		t.Fatalf("decisions status %d", code)
	}
	if len(all) != 3 {
		t.Fatalf("%d decisions returned", len(all))
	}
	// Newest first: the last honest submit leads, the lie is in the middle.
	if all[0].Verdict.Flagged || !all[1].Verdict.Flagged || all[2].Verdict.Flagged {
		t.Fatalf("order wrong: %v %v %v", all[0].Verdict.Flagged, all[1].Verdict.Flagged, all[2].Verdict.Flagged)
	}

	var flagged []audit.Record
	if code := fetchJSON(t, ts.URL+"/debug/decisions?verdict=flagged", &flagged); code != http.StatusOK {
		t.Fatalf("flagged filter status %d", code)
	}
	if len(flagged) != 1 || !flagged[0].Verdict.Flagged {
		t.Fatalf("flagged filter returned %+v", flagged)
	}

	var benign []audit.Record
	fetchJSON(t, ts.URL+"/debug/decisions?verdict=benign", &benign)
	if len(benign) != 2 {
		t.Fatalf("benign filter returned %d records", len(benign))
	}

	var limited []audit.Record
	fetchJSON(t, ts.URL+"/debug/decisions?n=1", &limited)
	if len(limited) != 1 {
		t.Fatalf("n=1 returned %d records", len(limited))
	}

	var byTrace []audit.Record
	fetchJSON(t, ts.URL+"/debug/decisions?trace="+flagged[0].TraceID, &byTrace)
	if len(byTrace) != 1 || byTrace[0].Seq != flagged[0].Seq {
		t.Fatalf("trace filter returned %+v", byTrace)
	}

	var none []audit.Record
	if code := fetchJSON(t, ts.URL+"/debug/decisions?trace=ffffffffffffffff", &none); code != http.StatusOK || len(none) != 0 {
		t.Fatalf("unknown trace: status %d, %d records", code, len(none))
	}

	if code := fetchJSON(t, ts.URL+"/debug/decisions?n=0", nil); code != http.StatusBadRequest {
		t.Fatalf("n=0 status %d, want 400", code)
	}
	if code := fetchJSON(t, ts.URL+"/debug/decisions?n=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("n=bogus status %d, want 400", code)
	}
	if code := fetchJSON(t, ts.URL+"/debug/decisions?verdict=suspicious", nil); code != http.StatusBadRequest {
		t.Fatalf("bad verdict status %d, want 400", code)
	}
}

func TestDecisionsEndpointWithoutLedger(t *testing.T) {
	m, _ := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if code := fetchJSON(t, ts.URL+"/debug/decisions", nil); code != http.StatusNotFound {
		t.Fatalf("status %d without ledger, want 404", code)
	}
}

func TestDebugIndexPage(t *testing.T) {
	m, _ := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"/debug/traces", "/debug/decisions", "/debug/bundle", "/metrics",
		"/v1/stats", "/v1/flagged", "/admin/model/info", "/debug/pprof/", "/debug/vars", "/healthz",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("index missing %q:\n%s", want, body)
		}
	}

	// Unknown /debug/ paths are not swallowed by the index handler.
	resp, err = http.Get(ts.URL + "/debug/nonsense")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/nonsense status %d, want 404", resp.StatusCode)
	}
}

func metricValue(t *testing.T, baseURL, family string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, family+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(family)+1:], "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v, true
		}
	}
	return 0, false
}

func TestAuditMetricsFamilies(t *testing.T) {
	families := []string{
		"polygraph_audit_records_total",
		"polygraph_audit_dropped_total",
		"polygraph_audit_bytes_total",
	}

	// Without a ledger the families still exist (zero), so a promlint
	// -require list holds in every deployment shape.
	m, _ := testModel(t)
	bare, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	tsBare := httptest.NewServer(bare)
	defer tsBare.Close()
	for _, fam := range families {
		v, ok := metricValue(t, tsBare.URL, fam)
		if !ok {
			t.Fatalf("%s missing without ledger", fam)
		}
		if v != 0 {
			t.Fatalf("%s = %g without ledger, want 0", fam, v)
		}
	}

	_, _, ts := auditedServer(t, 1)
	_, d := testModel(t)
	client := NewClient(ts.URL)
	lying := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110})
	if _, err := client.Submit(context.Background(), lying); err != nil {
		t.Fatal(err)
	}
	recs, ok := metricValue(t, ts.URL, "polygraph_audit_records_total")
	if !ok || recs != 1 {
		t.Fatalf("records_total = %g (present=%v), want 1", recs, ok)
	}
	bytesV, ok := metricValue(t, ts.URL, "polygraph_audit_bytes_total")
	if !ok || bytesV <= 0 {
		t.Fatalf("bytes_total = %g (present=%v), want > 0", bytesV, ok)
	}
}

func TestTCPScoreRecordsAudit(t *testing.T) {
	m, d := testModel(t)
	led, err := audit.Open(audit.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	srv, err := NewTCPServer(Config{Model: m, Audit: led})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	client, err := DialTCP(l.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	lying := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110})
	if _, err := client.SubmitBatch([]*fingerprint.Payload{honest, lying}); err != nil {
		t.Fatal(err)
	}

	c := led.Counters()
	if c.Records != 2 {
		t.Fatalf("counters = %+v, want 2 records", c)
	}
	wantHash, err := m.Hash()
	if err != nil {
		t.Fatal(err)
	}
	recent := led.Recent(10, "", "")
	if len(recent) != 2 {
		t.Fatalf("recent has %d records", len(recent))
	}
	for i, rec := range recent {
		if rec.Endpoint != EndpointTCP {
			t.Fatalf("record %d endpoint = %q, want %q", i, rec.Endpoint, EndpointTCP)
		}
		if rec.ModelHash != wantHash {
			t.Fatalf("record %d model hash %q != %q", i, rec.ModelHash, wantHash)
		}
		if rec.TraceID == "" {
			t.Fatalf("record %d has no trace ID", i)
		}
		if rec.Explanation == nil || rec.Explanation.Verdict != rec.Verdict {
			t.Fatalf("record %d explanation missing or inconsistent", i)
		}
	}
	// The TCP path copies the per-connection scratch vector; both
	// records must hold distinct, correct vectors.
	if len(recent[0].Vector) == 0 || len(recent[1].Vector) == 0 {
		t.Fatal("empty vectors in TCP audit records")
	}
	if &recent[0].Vector[0] == &recent[1].Vector[0] {
		t.Fatal("TCP audit records alias the same vector backing array")
	}
}
