package collect

import (
	"fmt"
	"strings"

	"polygraph/internal/fingerprint"
)

// CollectionScript renders the client-side JavaScript that FinOrg embeds
// in its flow (§6.2): it evaluates every configured feature, guards each
// probe against missing interfaces (a missing prototype reports 0, a
// missing property reports false — the conventions the oracle and
// pre-processing rely on), and posts the integer vector plus
// navigator.userAgent to the ingestion endpoint via sendBeacon.
//
// The script is a deliverable in its own right: its size is part of the
// paper's ≤1 KB-per-user data story, and its shape documents exactly
// what leaves the browser — integers only, no raw attributes.
func CollectionScript(feats []fingerprint.Feature, endpoint string) string {
	var b strings.Builder
	b.WriteString("// Browser Polygraph coarse-grained fingerprint collector.\n")
	b.WriteString("// Emits integer outputs only; see the privacy analysis in the paper (§7.4).\n")
	b.WriteString("(function () {\n")
	b.WriteString("  'use strict';\n")
	b.WriteString("  function c(p) { try { return Object.getOwnPropertyNames(p.prototype).length; } catch (e) { return 0; } }\n")
	b.WriteString("  function h(p, n) { try { return p.prototype.hasOwnProperty(n) ? 1 : 0; } catch (e) { return 0; } }\n")
	b.WriteString("  var v = [\n")
	for _, f := range feats {
		switch f.Kind {
		case fingerprint.DeviationBased:
			fmt.Fprintf(&b, "    c(typeof %s !== 'undefined' ? %s : {}),\n", f.Proto, f.Proto)
		case fingerprint.TimeBased:
			fmt.Fprintf(&b, "    h(typeof %s !== 'undefined' ? %s : {}, '%s'),\n", f.Proto, f.Proto, f.Prop)
		}
	}
	b.WriteString("  ];\n")
	fmt.Fprintf(&b, "  var payload = JSON.stringify({ sid: window.__bp_sid || '', ua: navigator.userAgent, v: v });\n")
	fmt.Fprintf(&b, "  if (navigator.sendBeacon) { navigator.sendBeacon(%q, payload); }\n", endpoint)
	fmt.Fprintf(&b, "  else { var x = new XMLHttpRequest(); x.open('POST', %q, true); x.send(payload); }\n", endpoint)
	b.WriteString("})();\n")
	return b.String()
}
