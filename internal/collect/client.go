package collect

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"polygraph/internal/fingerprint"
)

// Client submits fingerprint payloads to a collection server and returns
// scoring decisions — the role the browser-side script plays in
// production, and what load generators use in the benchmarks.
//
// Every failure is returned as a *ClientError so fleet balancers can
// distinguish an unreachable replica (IsDown → eject) from a live
// replica that answered badly (IsBadFrame → keep in rotation).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 2-second timeout (the
	// paper's end-to-end budget is 100 ms; the slack covers test
	// environments).
	HTTPClient *http.Client
}

// NewClient builds a client with the default timeout.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 2 * time.Second},
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Submit posts the payload in the compact binary format and decodes the
// decision.
func (c *Client) Submit(ctx context.Context, payload *fingerprint.Payload) (*Decision, error) {
	body, err := payload.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("collect: encode payload: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/collect", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("collect: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, classify("submit", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &ClientError{Kind: FailStatus, Op: "submit", Status: resp.StatusCode,
			Err: fmt.Errorf("server returned %d: %s", resp.StatusCode, bytes.TrimSpace(msg))}
	}
	var d Decision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, &ClientError{Kind: FailBadFrame, Op: "submit", Err: fmt.Errorf("decode decision: %w", err)}
	}
	return &d, nil
}

// Health probes the server's /healthz endpoint — the liveness check a
// fleet balancer runs before (re)admitting a replica to rotation.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return classify("health", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64))
	if resp.StatusCode != http.StatusOK {
		return &ClientError{Kind: FailStatus, Op: "health", Status: resp.StatusCode,
			Err: fmt.Errorf("healthz returned %d", resp.StatusCode)}
	}
	return nil
}

// FetchScript downloads the collection script the server serves.
func (c *Client) FetchScript(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/script.js", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", classify("fetch script", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &ClientError{Kind: FailStatus, Op: "fetch script", Status: resp.StatusCode,
			Err: fmt.Errorf("script endpoint returned %d", resp.StatusCode)}
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", classify("fetch script", err)
	}
	return string(b), nil
}

// FetchStats downloads the server's monitoring snapshot.
func (c *Client) FetchStats(ctx context.Context) (Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return Stats{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Stats{}, classify("stats", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, &ClientError{Kind: FailStatus, Op: "stats", Status: resp.StatusCode,
			Err: fmt.Errorf("/v1/stats returned %d", resp.StatusCode)}
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, &ClientError{Kind: FailBadFrame, Op: "stats", Err: fmt.Errorf("decode stats: %w", err)}
	}
	return st, nil
}
