package collect

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"polygraph/internal/browser"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/fingerprint"
	"polygraph/internal/ua"
)

// testModel trains a small model once for the whole package.
func testModel(t testing.TB) (*core.Model, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.Sessions = 20000
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := core.DefaultTrainConfig()
	tc.Reference = core.ExtractorReference{Extractor: d.Extractor, OS: ua.Windows10}
	m, _, err := core.Train(d.Samples(), tc)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func payloadFor(d *dataset.Dataset, rel ua.Release, claimed ua.Release) *fingerprint.Payload {
	vec := d.Extractor.Extract(browser.Profile{Release: rel, OS: ua.Windows10})
	p := &fingerprint.Payload{
		UserAgent: ua.UserAgent(claimed, ua.Windows10),
		Values:    fingerprint.VectorToValues(vec),
	}
	copy(p.SessionID[:], []byte("0123456789abcdef"))
	return p
}

func TestNewServerRequiresModel(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestEndToEndHonestAndLying(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)

	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	dec, err := client.Submit(context.Background(), honest)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Flagged {
		t.Fatalf("honest session flagged: %+v", dec)
	}

	lying := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110})
	dec, err = client.Submit(context.Background(), lying)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Flagged || dec.RiskFactor != ua.MaxDistance {
		t.Fatalf("cross-vendor lie decision: %+v", dec)
	}
	if dec.SessionID != "30313233343536373839616263646566" {
		t.Fatalf("session id = %s", dec.SessionID)
	}

	// Flagged session retained.
	if srv.Store().Len() != 1 {
		t.Fatalf("store has %d entries", srv.Store().Len())
	}
	stats, err := client.FetchStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Received != 2 || stats.Flagged != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// The 100 ms budget (§3) with enormous headroom.
	if stats.AvgScoreUs > 100000 {
		t.Fatalf("avg scoring latency %v µs exceeds 100 ms", stats.AvgScoreUs)
	}
}

func TestJSONEndpoint(t *testing.T) {
	m, d := testModel(t)
	srv, _ := NewServer(Config{Model: m})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	vec := d.Extractor.Extract(browser.Profile{Release: ua.Release{Vendor: ua.Firefox, Version: 110}, OS: ua.Windows10})
	body, _ := json.Marshal(map[string]any{
		"sid": "00112233445566778899aabbccddeeff",
		"ua":  ua.UserAgent(ua.Release{Vendor: ua.Firefox, Version: 110}, ua.Windows10),
		"v":   fingerprint.VectorToValues(vec),
	})
	resp, err := http.Post(ts.URL+"/v1/collect-json", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var dec Decision
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	if dec.Flagged {
		t.Fatalf("honest JSON session flagged: %+v", dec)
	}
}

func TestServerRejectsMalformed(t *testing.T) {
	m, _ := testModel(t)
	srv, _ := NewServer(Config{Model: m})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		path string
		body string
		ct   string
	}{
		{"/v1/collect", "garbage", "application/octet-stream"},
		{"/v1/collect-json", "{not json", "application/json"},
		{"/v1/collect-json", `{"ua":"x","v":[1,2]}`, "application/json"}, // wrong width
	}
	for i, c := range cases {
		resp, err := http.Post(ts.URL+c.path, c.ct, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("case %d accepted", i)
		}
	}
	if srv.Snapshot().Rejected != 3 {
		t.Fatalf("rejected counter = %d", srv.Snapshot().Rejected)
	}
}

func TestServerRejectsOversized(t *testing.T) {
	m, _ := testModel(t)
	srv, _ := NewServer(Config{Model: m, MaxBodyBytes: 64})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/collect", "application/octet-stream",
		bytes.NewReader(make([]byte, 1024)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestUnparseableUAIsMaxRisk(t *testing.T) {
	m, d := testModel(t)
	srv, _ := NewServer(Config{Model: m})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	p := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	p.UserAgent = "curl/8.0"
	dec, err := NewClient(ts.URL).Submit(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Flagged || dec.RiskFactor != ua.MaxDistance {
		t.Fatalf("junk UA decision: %+v", dec)
	}
}

func TestScriptEndpoint(t *testing.T) {
	m, _ := testModel(t)
	srv, _ := NewServer(Config{Model: m})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	script, err := NewClient(ts.URL).FetchScript(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{
		"Object.getOwnPropertyNames",
		"Element",
		"hasOwnProperty",
		"deviceMemory",
		"sendBeacon",
		"/v1/collect-json",
	} {
		if !strings.Contains(script, needle) {
			t.Fatalf("script missing %q", needle)
		}
	}
	// Every Table 8 feature must be probed.
	for _, f := range fingerprint.Table8() {
		if !strings.Contains(script, f.Proto) {
			t.Fatalf("script missing prototype %s", f.Proto)
		}
	}
}

func TestHealthz(t *testing.T) {
	m, _ := testModel(t)
	srv, _ := NewServer(Config{Model: m})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestScoreStream(t *testing.T) {
	m, d := testModel(t)
	in := make(chan *fingerprint.Payload)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out := ScoreStream(ctx, m, in, 4)

	const n = 500
	go func() {
		defer close(in)
		for i := 0; i < n; i++ {
			rel := ua.Release{Vendor: ua.Chrome, Version: 110 + i%4}
			claimed := rel
			if i%10 == 0 {
				claimed = ua.Release{Vendor: ua.Firefox, Version: 110}
			}
			in <- payloadFor(d, rel, claimed)
		}
	}()

	got, flagged, errs := 0, 0, 0
	for s := range out {
		got++
		if s.Err != nil {
			errs++
			continue
		}
		if s.Decision.Flagged {
			flagged++
		}
	}
	if got != n {
		t.Fatalf("received %d results, want %d", got, n)
	}
	if errs != 0 {
		t.Fatalf("%d errors", errs)
	}
	if flagged != n/10 {
		t.Fatalf("flagged %d, want %d", flagged, n/10)
	}
}

func TestScoreStreamWrongWidth(t *testing.T) {
	m, _ := testModel(t)
	in := make(chan *fingerprint.Payload, 1)
	in <- &fingerprint.Payload{UserAgent: "x", Values: []int64{1, 2}}
	close(in)
	out := ScoreStream(context.Background(), m, in, 1)
	s := <-out
	if s.Err == nil {
		t.Fatal("wrong-width payload scored without error")
	}
	if _, ok := <-out; ok {
		t.Fatal("stream did not close")
	}
}

func TestScoreStreamCancel(t *testing.T) {
	m, _ := testModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan *fingerprint.Payload) // never fed
	out := ScoreStream(ctx, m, in, 2)
	cancel()
	select {
	case _, ok := <-out:
		if ok {
			t.Fatal("unexpected result after cancel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close after cancel")
	}
}

func TestMemoryStoreRing(t *testing.T) {
	st := NewMemoryStore(16) // 1 per shard
	for i := 0; i < 100; i++ {
		st.Record(Decision{SessionID: string(rune('a' + i%26)), RiskFactor: i})
	}
	if st.Len() == 0 || st.Len() > 16 {
		t.Fatalf("store len = %d", st.Len())
	}
	if len(st.All()) != st.Len() {
		t.Fatal("All() inconsistent with Len()")
	}
}

func TestCollectionScriptShape(t *testing.T) {
	script := CollectionScript(fingerprint.Table8(), "/ingest")
	if len(script) > 4096 {
		t.Fatalf("script is %d bytes; the whole collection story is about being tiny", len(script))
	}
	if !strings.Contains(script, "/ingest") {
		t.Fatal("endpoint not embedded")
	}
}

func BenchmarkServerScore(b *testing.B) {
	m, d := testModel(b)
	srv, _ := NewServer(Config{Model: m})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)
	p := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Submit(ctx, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScoreStreamThroughput(b *testing.B) {
	m, d := testModel(b)
	p := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	b.ResetTimer()
	in := make(chan *fingerprint.Payload, 256)
	out := ScoreStream(context.Background(), m, in, 8)
	done := make(chan struct{})
	go func() {
		for range out {
		}
		close(done)
	}()
	for i := 0; i < b.N; i++ {
		in <- p
	}
	close(in)
	<-done
}

func TestServerRateLimiting(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewServer(Config{Model: m, RateLimitPerSec: 1, RateBurst: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)
	p := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	ok, limited := 0, 0
	for i := 0; i < 10; i++ {
		if _, err := client.Submit(context.Background(), p); err == nil {
			ok++
		} else if strings.Contains(err.Error(), "429") {
			limited++
		} else {
			t.Fatal(err)
		}
	}
	if ok < 3 || limited == 0 {
		t.Fatalf("ok=%d limited=%d", ok, limited)
	}
	// Stats and script endpoints stay reachable.
	if _, err := client.FetchStats(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSwapModelHotReload(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)
	p := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})

	// Swap under concurrent traffic: every decision must be coherent
	// (an honest session is never flagged by either model).
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				dec, err := client.Submit(context.Background(), p)
				if err != nil {
					errCh <- err
					return
				}
				if dec.Flagged {
					errCh <- fmt.Errorf("honest session flagged mid-swap: %+v", dec)
					return
				}
			}
		}()
	}
	// Retrain (same data, different seed) and swap several times.
	for i := 0; i < 3; i++ {
		tc := core.DefaultTrainConfig()
		tc.Seed = uint64(100 + i)
		tc.Reference = core.ExtractorReference{Extractor: d.Extractor, OS: ua.Windows10}
		m2, _, err := core.Train(d.Samples(), tc)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.SwapModel(m2); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if srv.Model() == m {
		t.Fatal("model not swapped")
	}
	if err := srv.SwapModel(nil); err == nil {
		t.Fatal("nil swap accepted")
	}
}

func TestServerJournalsFlaggedDecisions(t *testing.T) {
	m, d := testModel(t)
	journal, err := OpenJournal(t.TempDir(), "decisions", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{Model: m, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)
	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	lying := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110})
	for i := 0; i < 3; i++ {
		if _, err := client.Submit(context.Background(), honest); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Submit(context.Background(), lying); err != nil {
			t.Fatal(err)
		}
	}
	if err := journal.Sync(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := journal.Replay(func(dec Decision) bool {
		if !dec.Flagged {
			t.Fatal("journal contains unflagged decision")
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("journaled %d decisions, want 3", n)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	m, d := testModel(t)
	srv, _ := NewServer(Config{Model: m})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)
	lying := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110})
	if _, err := client.Submit(context.Background(), lying); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, needle := range []string{
		"polygraph_collections_total 1",
		"polygraph_flagged_total 1",
		"# TYPE polygraph_model_clusters gauge",
		"polygraph_model_accuracy",
	} {
		if !strings.Contains(out, needle) {
			t.Fatalf("metrics missing %q in:\n%s", needle, out)
		}
	}
}

// TestDriftRetrainHotSwapEndToEnd exercises the full operational loop:
// deploy a model, observe drift-window traffic through the service,
// detect drift, retrain, hot-swap, and verify the shifted release scores
// clean on the new model.
func TestDriftRetrainHotSwapEndToEnd(t *testing.T) {
	// 1. Deploy a model trained on the March–July window.
	m, d := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)

	// 2. Drift-window traffic arrives: Firefox 119 sessions are flagged
	// by the deployed model (their surface moved clusters).
	driftCfg := dataset.DefaultConfig()
	driftCfg.Window = dataset.DriftWindow
	driftCfg.MaxVersion = 119
	driftCfg.Sessions = 30000
	driftData, err := dataset.Generate(driftCfg)
	if err != nil {
		t.Fatal(err)
	}
	ff119 := ua.Release{Vendor: ua.Firefox, Version: 119}
	sessions := driftData.SessionsForRelease(ff119)
	if len(sessions) < 10 {
		t.Fatalf("only %d Firefox 119 sessions", len(sessions))
	}
	flaggedBefore := 0
	for _, s := range sessions[:10] {
		p := &fingerprint.Payload{UserAgent: s.UAString, Values: fingerprint.VectorToValues(s.Vector)}
		dec, err := client.Submit(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Flagged {
			flaggedBefore++
		}
	}
	if flaggedBefore == 0 {
		t.Fatal("old model did not flag any Firefox 119 session — no drift pressure")
	}

	// 3. Retrain on the drift window and hot-swap.
	tc := core.DefaultTrainConfig()
	tc.Reference = core.ExtractorReference{Extractor: driftData.Extractor, OS: ua.Windows10}
	fresh, _, err := core.Train(driftData.Samples(), tc)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SwapModel(fresh); err != nil {
		t.Fatal(err)
	}

	// 4. The same sessions now score clean.
	flaggedAfter := 0
	for _, s := range sessions[:10] {
		p := &fingerprint.Payload{UserAgent: s.UAString, Values: fingerprint.VectorToValues(s.Vector)}
		dec, err := client.Submit(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Flagged {
			flaggedAfter++
		}
	}
	if flaggedAfter >= flaggedBefore {
		t.Fatalf("retrain did not help: %d flagged before, %d after", flaggedBefore, flaggedAfter)
	}
	_ = d
}

func TestFlaggedQueryEndpoint(t *testing.T) {
	m, d := testModel(t)
	srv, _ := NewServer(Config{Model: m})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)
	// One cross-vendor lie (risk 20) and one near-version lie.
	crossVendor := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110})
	nearVersion := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 60})
	if _, err := client.Submit(context.Background(), crossVendor); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(context.Background(), nearVersion); err != nil {
		t.Fatal(err)
	}

	fetch := func(q string) []Decision {
		resp, err := http.Get(ts.URL + "/v1/flagged" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out []Decision
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	all := fetch("")
	if len(all) != 2 {
		t.Fatalf("%d flagged", len(all))
	}
	// Sorted by descending risk.
	if all[0].RiskFactor < all[1].RiskFactor {
		t.Fatal("not sorted by risk")
	}
	high := fetch("?min_risk=20")
	if len(high) != 1 || high[0].RiskFactor != ua.MaxDistance {
		t.Fatalf("min_risk filter: %+v", high)
	}
	resp, err := http.Get(ts.URL + "/v1/flagged?min_risk=junk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk min_risk status %d", resp.StatusCode)
	}
}
