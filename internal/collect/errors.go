package collect

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"polygraph/internal/rng"
)

// Typed client-side failure taxonomy. A fleet balancer routing around a
// bad replica needs to know *why* a request failed: a transport-level
// failure (dial refused, read timeout, connection reset) means the
// replica is down and should be ejected from rotation, while a protocol
// failure (undecodable frame, malformed response body) means the replica
// answered but the bytes were wrong — ejecting on those would let one
// corrupted payload take a healthy replica out of service.

// FailKind classifies a client-side failure.
type FailKind int

const (
	// FailDown marks transport-level failures: dial errors, timeouts,
	// resets — the replica is unreachable and a balancer should eject it.
	FailDown FailKind = iota + 1
	// FailBadFrame marks protocol-level failures: the replica answered
	// but the frame or response body did not decode. The replica is
	// alive; ejecting it would be wrong.
	FailBadFrame
	// FailStatus marks an HTTP response with a non-2xx status: the
	// replica is healthy enough to answer and took a position on the
	// request.
	FailStatus
)

func (k FailKind) String() string {
	switch k {
	case FailDown:
		return "down"
	case FailBadFrame:
		return "bad_frame"
	case FailStatus:
		return "status"
	default:
		return fmt.Sprintf("FailKind(%d)", int(k))
	}
}

// ClientError is a classified client-side failure.
type ClientError struct {
	// Kind is the taxonomy bucket a balancer should act on.
	Kind FailKind
	// Op names the operation that failed ("submit", "dial", "stats").
	Op string
	// Status is the HTTP status code for FailStatus errors (0 otherwise).
	Status int
	// Err is the underlying error.
	Err error
}

func (e *ClientError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("collect: %s: %s (status %d): %v", e.Op, e.Kind, e.Status, e.Err)
	}
	return fmt.Sprintf("collect: %s: %s: %v", e.Op, e.Kind, e.Err)
}

func (e *ClientError) Unwrap() error { return e.Err }

// classify buckets a transport error from net/http or net: timeouts and
// connection-level failures are FailDown; context cancellation is passed
// through as FailDown too (the replica did not answer).
func classify(op string, err error) *ClientError {
	kind := FailDown
	var ne net.Error
	switch {
	case errors.As(err, &ne), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		kind = FailDown
	}
	return &ClientError{Kind: kind, Op: op, Err: err}
}

// IsDown reports whether err represents an unreachable replica — the
// ejection signal for a fleet balancer.
func IsDown(err error) bool {
	var ce *ClientError
	return errors.As(err, &ce) && ce.Kind == FailDown
}

// IsBadFrame reports whether err represents a protocol failure from a
// live replica (which must NOT trigger ejection).
func IsBadFrame(err error) bool {
	var ce *ClientError
	return errors.As(err, &ce) && ce.Kind == FailBadFrame
}

// Backoff computes bounded, jittered reconnect delays. The jitter stream
// is PCG-seeded so a fixed-seed harness run schedules reconnects
// identically run to run — the same determinism contract as the rest of
// the harness. The zero value is unusable; build with NewBackoff.
type Backoff struct {
	base time.Duration
	max  time.Duration
	rng  *rng.PCG
}

// NewBackoff builds a backoff schedule: attempt n (0-based) waits
// base·2ⁿ capped at max, with ±25% deterministic jitter. base <= 0
// defaults to 50ms, max <= 0 to 2s.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	return &Backoff{base: base, max: max, rng: rng.New(seed)}
}

// Delay returns the wait before retry attempt (0-based).
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.base << uint(attempt)
	if d <= 0 || d > b.max { // <<: overflow guard
		d = b.max
	}
	// ±25% jitter keeps a fleet of reconnecting clients from stampeding
	// the replica that just came back.
	jitter := 0.75 + 0.5*b.rng.Float64()
	return time.Duration(float64(d) * jitter)
}
