package collect

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "test", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Decision, 100)
	for i := range want {
		want[i] = Decision{SessionID: fmt.Sprintf("s%03d", i), Cluster: i % 11, RiskFactor: i % 21, Flagged: i%3 == 0}
		if err := j.Append(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	var got []Decision
	corrupted, err := j.Replay(func(d Decision) bool {
		got = append(got, d)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted != 0 {
		t.Fatalf("%d corrupted lines", corrupted)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decision %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Decision{}); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatal("double close failed")
	}
}

func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "rot", 200) // tiny segments
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := j.Append(Decision{SessionID: fmt.Sprintf("session-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segments, err := j.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) < 3 {
		t.Fatalf("only %d segments; rotation not happening", len(segments))
	}
	// Replay preserves order across segments.
	i := 0
	_, err = j.Replay(func(d Decision) bool {
		if d.SessionID != fmt.Sprintf("session-%d", i) {
			t.Fatalf("order broken at %d: %s", i, d.SessionID)
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 50 {
		t.Fatalf("replayed %d of 50", i)
	}
}

func TestJournalResume(t *testing.T) {
	dir := t.TempDir()
	j1, err := OpenJournal(dir, "res", 0)
	if err != nil {
		t.Fatal(err)
	}
	j1.Append(Decision{SessionID: "first"})
	j1.Close()

	j2, err := OpenJournal(dir, "res", 0)
	if err != nil {
		t.Fatal(err)
	}
	j2.Append(Decision{SessionID: "second"})
	j2.Close()

	var ids []string
	if _, err := j2.Replay(func(d Decision) bool {
		ids = append(ids, d.SessionID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "first" || ids[1] != "second" {
		t.Fatalf("resume lost history: %v", ids)
	}
	segments, _ := j2.Segments()
	if len(segments) != 2 {
		t.Fatalf("%d segments after resume, want 2", len(segments))
	}
}

func TestJournalSkipsCorruptLines(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "cor", 0)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Decision{SessionID: "good-1"})
	j.Close()
	// Simulate a torn write.
	seg := filepath.Join(dir, "cor.000000.jsonl")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"session_id\":\"torn\n")
	f.WriteString("{\"session_id\":\"good-2\",\"cluster\":1,\"matched\":true,\"risk_factor\":0,\"flagged\":false,\"elapsed_us\":0}\n")
	f.Close()

	var ids []string
	corrupted, err := j.Replay(func(d Decision) bool {
		ids = append(ids, d.SessionID)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted != 1 {
		t.Fatalf("corrupted = %d, want 1", corrupted)
	}
	if len(ids) != 2 || ids[1] != "good-2" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestJournalReplayEarlyStop(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(dir, "stop", 0)
	for i := 0; i < 10; i++ {
		j.Append(Decision{SessionID: fmt.Sprintf("%d", i)})
	}
	j.Sync()
	n := 0
	if _, err := j.Replay(func(Decision) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d, want 3", n)
	}
	j.Close()
}

func TestJournalConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "conc", 4096)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append(Decision{SessionID: fmt.Sprintf("w%d-%d", w, i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	corrupted, err := j.Replay(func(Decision) bool { count++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if corrupted != 0 || count != workers*per {
		t.Fatalf("count=%d corrupted=%d", count, corrupted)
	}
}
