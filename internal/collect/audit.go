package collect

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"polygraph/internal/audit"
	"polygraph/internal/core"
	"polygraph/internal/obs"
)

// auditor bridges the scoring paths to the decision ledger: it applies
// the ledger's sampling policy, builds the explanation only for
// decisions that will actually be recorded, and stamps each record with
// the hash of the exact model that produced the verdict.
type auditor struct {
	ledger *audit.Ledger
	topK   int
}

// record audits one scored decision. dep is the deployment snapshot the
// verdict came from (model + hash loaded together, so a concurrent
// SwapModel cannot mismatch them). Returns nil for sampled-out benign
// decisions.
func (a *auditor) record(dep *deployed, tr *obs.Trace, endpoint, sessionID, userAgent string, vec []float64, res core.Result) error {
	if !a.ledger.Admit(res.Flagged()) {
		return nil
	}
	ex, err := dep.m.ExplainResult(vec, userAgent, res, a.topK)
	if err != nil {
		return err
	}
	rec := audit.Record{
		TimeNs:      time.Now().UnixNano(),
		ModelHash:   dep.hash,
		SessionID:   sessionID,
		UserAgent:   userAgent,
		Endpoint:    endpoint,
		Vector:      vec,
		Verdict:     ex.Verdict,
		Explanation: ex,
	}
	if tr != nil {
		rec.TraceID = tr.ID.String()
	}
	return a.ledger.Append(rec)
}

// handleDecisions serves the ledger's recent-record ring as JSON:
// GET /debug/decisions?n=50&verdict=flagged|benign&trace=<id>.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if s.auditor == nil {
		http.Error(w, "audit ledger not configured", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	n := 50
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			s.reject(w, nil, http.StatusBadRequest, reasonBadRequest, "bad n %q", v)
			return
		}
		n = parsed
	}
	verdict := q.Get("verdict")
	switch verdict {
	case "", "flagged", "benign":
	default:
		s.reject(w, nil, http.StatusBadRequest, reasonBadRequest, "bad verdict %q (want flagged or benign)", verdict)
		return
	}
	recent := s.auditor.ledger.Recent(n, verdict, q.Get("trace"))
	if recent == nil {
		recent = []audit.Record{}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(recent); err != nil {
		s.logWarn(nil, "collect: encode decisions failed", "err", err.Error())
	}
}

// handleDebugIndex is a plain-HTML map of the operator endpoints, so
// nothing needs the README to be discoverable. pprof and expvar live on
// polygraphd's separate -debug-addr listener; they are listed with that
// caveat.
func (s *Server) handleDebugIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/debug/" && r.URL.Path != "/debug" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(`<!DOCTYPE html>
<html><head><title>polygraph debug</title></head><body>
<h1>polygraph debug index</h1>
<ul>
<li><a href="/debug/traces">/debug/traces</a> — recent request traces (?n=, ?slowest=)</li>
<li><a href="/debug/decisions">/debug/decisions</a> — recent audited verdicts (?n=, ?verdict=flagged|benign, ?trace=&lt;id&gt;)</li>
<li><a href="/debug/bundle">/debug/bundle</a> — download a support bundle (?pprof_seconds=, ?no-redact=1; serving-replica runtime)</li>
<li><a href="/debug/slo">/debug/slo</a> — SLO burn-rate status (404 until an engine is attached)</li>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/v1/stats">/v1/stats</a> — serving counters snapshot</li>
<li><a href="/v1/flagged">/v1/flagged</a> — retained flagged sessions (?min_risk=)</li>
<li><a href="/admin/model/info">/admin/model/info</a> — deployed model provenance (serving-replica runtime)</li>
<li><a href="/healthz">/healthz</a> — liveness</li>
<li><a href="/debug/pprof/">/debug/pprof/</a>, <a href="/debug/vars">/debug/vars</a> — profiles and expvar (here with serving debug mode; otherwise on the polygraphd <code>-debug-addr</code> listener)</li>
</ul>
</body></html>
`))
}
