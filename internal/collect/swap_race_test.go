package collect

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"polygraph/internal/core"
	"polygraph/internal/pipeline"
	"polygraph/internal/ua"
)

// TestSwapModelUnderConcurrentScoring hammers SwapModel while scoring
// requests are in flight. Run under -race this proves the hot-swap path
// publishes models safely: every request scores against a complete model
// (the one loaded at request start), never a torn one.
func TestSwapModelUnderConcurrentScoring(t *testing.T) {
	m, d := testModel(t)
	m2, _ := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}

	rel := ua.Release{Vendor: ua.Chrome, Version: 112}
	payload := payloadFor(d, rel, rel)
	body, err := json.Marshal(jsonPayload{
		SessionID: "30313233343536373839616263646566",
		UserAgent: payload.UserAgent,
		Values:    payload.Values,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Swapper: flip between two (identical-content) models as fast as
	// possible, refreshing the stage record alongside each swap the way
	// the daemon's reload loop does.
	stop := make(chan struct{})
	swapperDone := make(chan struct{})
	stages := []pipeline.Timing{{Name: "kmeans", Duration: time.Millisecond, RowsIn: 10, RowsOut: 10}}
	go func() {
		defer close(swapperDone)
		models := [2]*core.Model{m, m2}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := srv.SwapModel(models[i%2]); err != nil {
				t.Error(err)
				return
			}
			srv.SetTrainStages(stages)
		}
	}()

	// Scorers: concurrent collect-json requests plus metric scrapes.
	const scorers = 4
	var wg sync.WaitGroup
	for g := 0; g < scorers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/collect-json", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("collect status %d: %s", rec.Code, rec.Body.String())
					return
				}
				var dec Decision
				if err := json.Unmarshal(rec.Body.Bytes(), &dec); err != nil {
					t.Errorf("decode decision: %v", err)
					return
				}
				if dec.Flagged {
					t.Errorf("honest session flagged mid-swap: %+v", dec)
					return
				}
				if i%20 == 0 {
					mrec := httptest.NewRecorder()
					srv.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
					if mrec.Code != http.StatusOK {
						t.Errorf("metrics status %d", mrec.Code)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-swapperDone
}

// TestMetricsExportTrainStages checks the /metrics rendering of stage
// timings recorded via SetTrainStages.
func TestMetricsExportTrainStages(t *testing.T) {
	m, _ := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetTrainStages([]pipeline.Timing{
		{Name: "scale", Duration: 2 * time.Millisecond, RowsIn: 100, RowsOut: 100},
		{Name: "kmeans", Duration: 5 * time.Millisecond, RowsIn: 98, RowsOut: 98},
	})
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	out := rec.Body.String()
	for _, want := range []string{
		`polygraph_train_stage_duration_seconds{stage="scale"} 0.002`,
		`polygraph_train_stage_duration_seconds{stage="kmeans"} 0.005`,
		`polygraph_train_stage_rows_in{stage="kmeans"} 98`,
		`polygraph_train_stage_rows_out{stage="scale"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
	// A server that never saw SetTrainStages must omit the families.
	srv2, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	rec2 := httptest.NewRecorder()
	srv2.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(rec2.Body.String(), "polygraph_train_stage_duration_seconds") {
		t.Error("stage metrics exported without SetTrainStages")
	}
}
