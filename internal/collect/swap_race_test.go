package collect

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"polygraph/internal/core"
	"polygraph/internal/pipeline"
	"polygraph/internal/ua"
)

// TestSwapModelUnderConcurrentScoring hammers SwapModel while scoring
// requests are in flight. Run under -race this proves the hot-swap path
// publishes models safely: every request scores against a complete model
// (the one loaded at request start), never a torn one.
func TestSwapModelUnderConcurrentScoring(t *testing.T) {
	m, d := testModel(t)
	m2, _ := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}

	rel := ua.Release{Vendor: ua.Chrome, Version: 112}
	payload := payloadFor(d, rel, rel)
	body, err := json.Marshal(jsonPayload{
		SessionID: "30313233343536373839616263646566",
		UserAgent: payload.UserAgent,
		Values:    payload.Values,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Swapper: flip between two (identical-content) models as fast as
	// possible, refreshing the stage record alongside each swap the way
	// the daemon's reload loop does.
	stop := make(chan struct{})
	swapperDone := make(chan struct{})
	stages := []pipeline.Timing{{Name: "kmeans", Duration: time.Millisecond, RowsIn: 10, RowsOut: 10}}
	go func() {
		defer close(swapperDone)
		models := [2]*core.Model{m, m2}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := srv.SwapModel(models[i%2]); err != nil {
				t.Error(err)
				return
			}
			srv.SetTrainStages(stages)
		}
	}()

	// Scorers: concurrent collect-json requests plus metric scrapes.
	const scorers = 4
	var wg sync.WaitGroup
	for g := 0; g < scorers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/collect-json", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("collect status %d: %s", rec.Code, rec.Body.String())
					return
				}
				var dec Decision
				if err := json.Unmarshal(rec.Body.Bytes(), &dec); err != nil {
					t.Errorf("decode decision: %v", err)
					return
				}
				if dec.Flagged {
					t.Errorf("honest session flagged mid-swap: %+v", dec)
					return
				}
				if i%20 == 0 {
					mrec := httptest.NewRecorder()
					srv.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
					if mrec.Code != http.StatusOK {
						t.Errorf("metrics status %d", mrec.Code)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-swapperDone
}

// TestIngestVsStatsUnderConcurrentHammer hammers the ingest endpoints
// while other goroutines scrape /v1/stats, /metrics, /v1/flagged, and
// Snapshot directly. Under -race this proves the counter reads are not
// torn; the invariant checks prove the snapshots are coherent views:
// received never decreases between successive snapshots, flagged never
// exceeds received, and the average latency implied by a snapshot is
// non-negative and finite.
func TestIngestVsStatsUnderConcurrentHammer(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}

	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	lying := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110})
	honestBody, err := honest.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	lyingBody, err := lying.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bad := []byte("garbage")

	const ingesters = 4
	const perIngester = 300
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			bodies := [3][]byte{honestBody, lyingBody, bad}
			for i := 0; i < perIngester; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/collect", bytes.NewReader(bodies[(g+i)%3]))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
			}
		}(g)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastReceived int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := srv.Snapshot()
				if st.Received < lastReceived {
					t.Errorf("received went backwards: %d -> %d", lastReceived, st.Received)
					return
				}
				lastReceived = st.Received
				if st.Flagged > st.Received {
					t.Errorf("flagged %d exceeds received %d", st.Flagged, st.Received)
					return
				}
				if st.AvgScoreUs < 0 {
					t.Errorf("negative average latency %v", st.AvgScoreUs)
					return
				}
				for _, path := range []string{"/v1/stats", "/metrics", "/v1/flagged"} {
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
					if rec.Code != http.StatusOK {
						t.Errorf("%s status %d", path, rec.Code)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	// The hammer sent equal thirds of honest / lying / garbage bodies.
	st := srv.Snapshot()
	const total = ingesters * perIngester
	if st.Received+st.Rejected != total {
		t.Fatalf("received %d + rejected %d != %d sent", st.Received, st.Rejected, total)
	}
	if st.Received != 2*total/3 || st.Rejected != total/3 {
		t.Fatalf("received %d rejected %d, want %d/%d", st.Received, st.Rejected, 2*total/3, total/3)
	}
	if st.Flagged != total/3 {
		t.Fatalf("flagged %d, want %d", st.Flagged, total/3)
	}
}

// TestMetricsExportTrainStages checks the /metrics rendering of stage
// timings recorded via SetTrainStages.
func TestMetricsExportTrainStages(t *testing.T) {
	m, _ := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetTrainStages([]pipeline.Timing{
		{Name: "scale", Duration: 2 * time.Millisecond, RowsIn: 100, RowsOut: 100},
		{Name: "kmeans", Duration: 5 * time.Millisecond, RowsIn: 98, RowsOut: 98},
	})
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	out := rec.Body.String()
	for _, want := range []string{
		`polygraph_train_stage_duration_seconds{stage="scale"} 0.002`,
		`polygraph_train_stage_duration_seconds{stage="kmeans"} 0.005`,
		`polygraph_train_stage_rows_in{stage="kmeans"} 98`,
		`polygraph_train_stage_rows_out{stage="scale"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
	// A server that never saw SetTrainStages must omit the families.
	srv2, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	rec2 := httptest.NewRecorder()
	srv2.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(rec2.Body.String(), "polygraph_train_stage_duration_seconds") {
		t.Error("stage metrics exported without SetTrainStages")
	}
}
