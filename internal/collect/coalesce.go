package collect

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"polygraph/internal/core"
	"polygraph/internal/fingerprint"
	"polygraph/internal/obs"
	"polygraph/internal/pipeline"
)

// The coalescer is the edge-batching layer between the framed TCP
// protocol and the model's batch scorer. A pipelining client (one that
// writes many frames before reading any reply) lands all of its frames
// in the connection's read buffer at once; the coalescer drains every
// frame already buffered — up to maxBatch — decodes them into one
// reused vector block, scores the block through a single
// ScoreStringBatchContext call (parallel.PlanFor decides the worker
// fan-out), and writes all replies with one flush.
//
// The latency contract for interactive clients is preserved by
// construction: read-ahead only consumes frames whose bytes are already
// buffered (never blocking mid-batch while maxDelay is zero, the
// default), so a client that sends one frame and waits for the reply
// always sees a batch of one — which short-circuits to the exact
// serial ScoreStringWith path and flushes immediately.

const (
	// defaultTCPMaxBatch caps a coalesced batch when Config.TCPMaxBatch
	// is zero. 256 frames × ≤1 KiB is at most 256 KiB of payload per
	// scoring call — deep enough to engage the parallel plan, shallow
	// enough that reply latency for the first frame stays bounded.
	defaultTCPMaxBatch = 256

	// tcpReadBufSize sizes the per-connection read buffer. It must hold
	// at least one maximum frame plus its length prefix so Peek can see
	// a whole frame without the reader refusing (bufio.ErrBufferFull);
	// 64 KiB also lets read-ahead see many small pipelined frames per
	// syscall.
	tcpReadBufSize = 64 << 10
)

// coalescer owns one connection's framing state and all the reusable
// batch buffers, so steady-state batches allocate only what the audit
// retention boundary demands (owned vector copies).
type coalescer struct {
	s    *TCPServer
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// frameBuf holds the raw bytes of every frame in the current batch
	// back-to-back; ends[i] is the exclusive end offset of frame i.
	// Offsets, not subslices: frameBuf grows by copy and would
	// invalidate earlier views.
	frameBuf []byte
	ends     []int

	// Per-batch decode products, indexed by frame. payloads[i] is nil
	// for frames that failed decode (statuses[i] says why).
	payloads []*fingerprint.Payload
	statuses []string

	// vecBlock is the flattened feature matrix for decodable frames;
	// vecs are row views into it. rowFrame maps scoring row -> frame
	// index, since undecodable frames never reach the scorer.
	vecBlock []float64
	vecs     [][]float64
	uas      []string
	rowFrame []int

	sids    []string
	results []core.Result
	replies []byte

	// vec and scratch serve the batch-of-one fast path, which routes
	// through scoreFrame exactly like the historical per-frame loop.
	vec     []float64
	scratch *core.Scratch

	lenBuf [4]byte
}

func newCoalescer(s *TCPServer, conn net.Conn, br *bufio.Reader, bw *bufio.Writer) *coalescer {
	return &coalescer{
		s:       s,
		conn:    conn,
		br:      br,
		bw:      bw,
		vec:     make([]float64, s.model.Dim()),
		scratch: s.model.NewScratch(),
	}
}

// frame returns the byte view of frame i in the current batch.
func (c *coalescer) frame(i int) []byte {
	start := 0
	if i > 0 {
		start = c.ends[i-1]
	}
	return c.frameBuf[start:c.ends[i]]
}

func (c *coalescer) reset() {
	c.frameBuf = c.frameBuf[:0]
	c.ends = c.ends[:0]
}

// appendFrame reads n frame bytes from the connection into frameBuf.
func (c *coalescer) appendFrame(n int) error {
	off := len(c.frameBuf)
	need := off + n
	if cap(c.frameBuf) < need {
		grown := make([]byte, off, need+tcpMaxFrame)
		copy(grown, c.frameBuf)
		c.frameBuf = grown
	}
	c.frameBuf = c.frameBuf[:need]
	if _, err := io.ReadFull(c.br, c.frameBuf[off:need]); err != nil {
		return err
	}
	c.ends = append(c.ends, need)
	return nil
}

// serveBatch reads one batch (blocking for the first frame, draining
// buffered pipelined frames after it), scores it, and writes the
// replies. It reports whether the connection should keep serving.
func (c *coalescer) serveBatch() bool {
	c.conn.SetReadDeadline(time.Now().Add(c.s.idle))
	if _, err := io.ReadFull(c.br, c.lenBuf[:]); err != nil {
		return false // clean EOF or idle timeout
	}
	n := binary.BigEndian.Uint32(c.lenBuf[:])
	if n == 0 || n > tcpMaxFrame {
		return false // protocol violation: drop the connection
	}
	c.reset()
	if err := c.appendFrame(int(n)); err != nil {
		return false
	}
	keep := c.readAhead()
	c.s.batchHist.Record(time.Duration(len(c.ends)) * time.Microsecond)
	var ok bool
	if len(c.ends) == 1 {
		ok = c.serveSingle()
	} else {
		ok = c.serveBatched()
	}
	return ok && keep
}

// readAhead drains pipelined frames already sitting in the read buffer,
// up to maxBatch. With maxDelay zero (the default) it never blocks: a
// frame is consumed only when its length prefix and full body are
// already buffered. With a positive maxDelay it may wait up to that
// long after the batch's first frame for stragglers. It reports false
// when the stream hits a protocol violation — the batch gathered so far
// is still served, then the connection drops.
func (c *coalescer) readAhead() bool {
	if c.s.maxDelay > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.s.maxDelay))
	}
	for len(c.ends) < c.s.maxBatch {
		if c.s.maxDelay <= 0 && c.br.Buffered() < 4 {
			return true
		}
		prefix, err := c.br.Peek(4)
		if err != nil {
			return true // timeout or EOF: serve what we have
		}
		n := binary.BigEndian.Uint32(prefix)
		if n == 0 || n > tcpMaxFrame {
			return false // violation mid-batch: serve, then drop
		}
		if c.s.maxDelay <= 0 && c.br.Buffered() < 4+int(n) {
			return true
		}
		if _, err := c.br.Peek(4 + int(n)); err != nil {
			return true
		}
		c.br.Discard(4)
		if err := c.appendFrame(int(n)); err != nil {
			return true
		}
	}
	return true
}

// serveSingle is the batch-of-one fast path: the exact historical
// per-frame code, ending in an immediate flush so an interactive
// client's reply is never parked behind a batching buffer.
func (c *coalescer) serveSingle() bool {
	frameStart := time.Now()
	ctx, tr := c.s.tracer.Start(context.Background(), EndpointTCP)
	reply, status := c.s.scoreFrame(ctx, c.frame(0), c.vec, c.scratch)
	if status == "ok" {
		c.s.hist.Record(time.Since(frameStart))
	}
	c.s.tracer.Finish(tr, status)
	if _, err := c.bw.Write(reply[:]); err != nil {
		return false
	}
	return c.bw.Flush() == nil
}

// prep sizes the batch working set for nFrames frames of dim features.
func (c *coalescer) prep(nFrames, dim int) {
	if cap(c.payloads) < nFrames {
		c.payloads = make([]*fingerprint.Payload, nFrames)
		c.statuses = make([]string, nFrames)
		c.sids = make([]string, nFrames)
	}
	c.payloads = c.payloads[:nFrames]
	c.statuses = c.statuses[:nFrames]
	c.sids = c.sids[:nFrames]
	for i := range c.payloads {
		c.payloads[i] = nil
		c.statuses[i] = ""
		c.sids[i] = ""
	}
	if cap(c.vecBlock) < nFrames*dim {
		c.vecBlock = make([]float64, nFrames*dim)
	}
	c.vecBlock = c.vecBlock[:nFrames*dim]
	c.vecs = c.vecs[:0]
	c.uas = c.uas[:0]
	c.rowFrame = c.rowFrame[:0]
	if cap(c.replies) < nFrames*tcpReplySize {
		c.replies = make([]byte, nFrames*tcpReplySize)
	}
	c.replies = c.replies[:nFrames*tcpReplySize]
	for i := range c.replies {
		c.replies[i] = 0
	}
}

// reply returns the wire view of frame i's reply.
func (c *coalescer) reply(i int) []byte {
	return c.replies[i*tcpReplySize : (i+1)*tcpReplySize]
}

// serveBatched decodes every frame in the batch, scores the decodable
// rows through one batch call, and writes all replies in frame order
// with a single flush. Per-frame semantics — reply layout, error
// flagging, store records, audit records with owned vector copies —
// are identical to the serial path; only the scheduling changes.
func (c *coalescer) serveBatched() bool {
	batchStart := time.Now()
	ctx, tr := c.s.tracer.Start(context.Background(), EndpointTCP)
	nFrames := len(c.ends)
	dim := c.s.model.Dim()
	c.prep(nFrames, dim)

	endDecode := pipeline.StartSpan(ctx, "decode")
	for i := 0; i < nFrames; i++ {
		payload, err := fingerprint.UnmarshalBinary(c.frame(i))
		if err != nil {
			c.reply(i)[tcpReplySize-1] = tcpErrorFlag
			if errors.Is(err, fingerprint.ErrBadVersion) {
				c.statuses[i] = "bad_version"
			} else {
				c.statuses[i] = "decode"
			}
			c.s.badFrames.Add(1)
			continue
		}
		copy(c.reply(i)[:fingerprint.SessionIDSize], payload.SessionID[:])
		if len(payload.Values) != dim {
			c.reply(i)[tcpReplySize-1] = tcpErrorFlag
			c.statuses[i] = "bad_dim"
			c.s.badFrames.Add(1)
			continue
		}
		row := len(c.vecs)
		v := c.vecBlock[row*dim : (row+1)*dim]
		for j, val := range payload.Values {
			v[j] = float64(val)
		}
		c.payloads[i] = payload
		c.statuses[i] = "ok"
		c.vecs = append(c.vecs, v)
		c.uas = append(c.uas, payload.UserAgent)
		c.rowFrame = append(c.rowFrame, i)
	}
	endDecode()

	if len(c.vecs) > 0 {
		results, err := c.s.model.ScoreStringBatchContext(ctx, c.vecs, c.uas, 0)
		if err != nil {
			// Batch-level failure (a poisoned row aborts the whole
			// call): fall back to scoring each row serially so one bad
			// frame cannot sink its batchmates' verdicts.
			results = make([]core.Result, len(c.vecs))
			for r := range c.vecs {
				res, rerr := c.s.model.ScoreStringWith(c.scratch, c.vecs[r], c.uas[r])
				if rerr != nil {
					i := c.rowFrame[r]
					c.reply(i)[tcpReplySize-1] = tcpErrorFlag
					c.statuses[i] = "score"
					c.payloads[i] = nil
					c.s.badFrames.Add(1)
					continue
				}
				results[r] = res
			}
		}
		c.results = results
	} else {
		c.results = c.results[:0]
	}

	for r, i := range c.rowFrame {
		if c.payloads[i] == nil {
			continue // serial-fallback row that failed to score
		}
		res := c.results[r]
		if c.s.drift != nil {
			c.s.drift.Observe(c.vecs[r])
		}
		reply := c.reply(i)
		binary.BigEndian.PutUint16(reply[fingerprint.SessionIDSize:], uint16(res.Cluster))
		binary.BigEndian.PutUint16(reply[fingerprint.SessionIDSize+2:], uint16(res.RiskFactor))
		var flags byte
		if res.Flagged() {
			flags |= tcpFlagged
		}
		if res.Matched {
			flags |= tcpMatched
		}
		reply[tcpReplySize-1] = flags
		c.s.scored.Add(1)
		sessionID := fmt.Sprintf("%x", c.payloads[i].SessionID[:])
		c.sids[i] = sessionID
		if res.Flagged() {
			c.s.flagged.Add(1)
			c.s.store.Record(Decision{
				SessionID:  sessionID,
				Cluster:    res.Cluster,
				RiskFactor: res.RiskFactor,
				Flagged:    true,
			})
		}
	}

	if c.s.auditor != nil {
		endAudit := pipeline.StartSpan(ctx, "audit")
		for r, i := range c.rowFrame {
			if c.payloads[i] == nil {
				continue
			}
			// vecBlock is reused by the next batch; each ledger record
			// must own its vector.
			owned := append([]float64(nil), c.vecs[r]...)
			if err := c.s.auditor.record(c.s.dep, obs.TraceFrom(ctx), EndpointTCP, c.sids[i], c.payloads[i].UserAgent, owned, c.results[r]); err != nil {
				c.s.badAudit.Add(1)
			}
		}
		endAudit()
	}

	elapsed := time.Since(batchStart)
	status := "ok"
	for i := 0; i < nFrames; i++ {
		if c.statuses[i] == "ok" && c.payloads[i] != nil {
			// Per-frame latency under coalescing is the batch's wall
			// time: that is what each client frame actually waited.
			c.s.hist.Record(elapsed)
		} else {
			status = "partial"
		}
	}
	c.s.tracer.Finish(tr, status)

	if _, err := c.bw.Write(c.replies); err != nil {
		return false
	}
	return c.bw.Flush() == nil
}
