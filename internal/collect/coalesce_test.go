package collect

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"polygraph/internal/fingerprint"
	"polygraph/internal/ua"
)

// pipeServe runs handleConn over an in-memory pipe, which makes batch
// boundaries deterministic: net.Pipe delivers each client Write as one
// unit, so every byte written in a single call is buffered before the
// coalescer's read-ahead runs.
func pipeServe(s *TCPServer) (net.Conn, func()) {
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.handleConn(server)
	}()
	cleanup := func() {
		client.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
		}
	}
	return client, cleanup
}

// frameBytes encodes payloads as a hello-prefixed pipelined frame burst.
func frameBytes(t *testing.T, withHello bool, payloads ...*fingerprint.Payload) []byte {
	t.Helper()
	var out []byte
	if withHello {
		out = append(out, tcpHello...)
	}
	var lenBuf [4]byte
	for _, p := range payloads {
		enc, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(enc)))
		out = append(out, lenBuf[:]...)
		out = append(out, enc...)
	}
	return out
}

func readReplies(t *testing.T, conn net.Conn, n int) [][tcpReplySize]byte {
	t.Helper()
	out := make([][tcpReplySize]byte, n)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(conn, out[i][:]); err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
	}
	return out
}

// TestTCPCoalescedParity is the tentpole's bit-identity contract: the
// same stream scored through pipelined coalesced batches and through
// one-frame-at-a-time submissions must produce identical decisions.
func TestTCPCoalescedParity(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewTCPServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	const n = 600
	stream := make([]*fingerprint.Payload, n)
	for i := range stream {
		switch i % 4 {
		case 0, 1:
			rel := ua.Release{Vendor: ua.Chrome, Version: 110 + i%4}
			stream[i] = payloadFor(d, rel, rel)
		case 2: // fraud shape: Firefox engine claiming Chrome
			stream[i] = payloadFor(d, ua.Release{Vendor: ua.Firefox, Version: 110}, ua.Release{Vendor: ua.Chrome, Version: 112})
		default: // wrong feature width: error-flag reply
			stream[i] = &fingerprint.Payload{UserAgent: "x", Values: []int64{1, 2, 3}}
		}
	}

	batched, err := DialTCP(l.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()
	got, err := batched.SubmitBatch(stream)
	if err != nil {
		t.Fatal(err)
	}

	serial, err := DialTCP(l.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	for i, p := range stream {
		want, err := serial.SubmitBatch([]*fingerprint.Payload{p})
		if err != nil {
			t.Fatalf("serial frame %d: %v", i, err)
		}
		if got[i] != want[0] {
			t.Fatalf("frame %d: batched %+v != serial %+v", i, got[i], want[0])
		}
	}
	if srv.BatchHist().Count() == 0 {
		t.Fatal("batch-size histogram never recorded")
	}
}

// TestTCPCoalescerBatchOfOne covers the empty-read-ahead flush boundary:
// an interactive client sending one frame and waiting must get its reply
// immediately (immediate flush) and be recorded as a batch of one.
func TestTCPCoalescerBatchOfOne(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewTCPServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	conn, cleanup := pipeServe(srv)
	defer cleanup()

	rel := ua.Release{Vendor: ua.Chrome, Version: 112}
	p := payloadFor(d, rel, rel)
	if _, err := conn.Write(frameBytes(t, true, p)); err != nil {
		t.Fatal(err)
	}
	replies := readReplies(t, conn, 1)
	if replies[0][tcpReplySize-1]&tcpErrorFlag != 0 {
		t.Fatalf("error reply: %v", replies[0])
	}
	h := srv.BatchHist()
	if h.Count() != 1 {
		t.Fatalf("batch count %d, want 1", h.Count())
	}
	if h.Max() != time.Microsecond {
		t.Fatalf("batch-of-one recorded as %v, want 1µs (= 1 frame)", h.Max())
	}
}

// TestTCPCoalescerExactlyMaxBatch covers the MaxBatch flush boundary: a
// burst of exactly MaxBatch frames coalesces into one batch, and a
// larger burst splits at the cap without losing frames.
func TestTCPCoalescerExactlyMaxBatch(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewTCPServer(Config{Model: m, TCPMaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	conn, cleanup := pipeServe(srv)
	defer cleanup()

	rel := ua.Release{Vendor: ua.Chrome, Version: 112}
	burst := make([]*fingerprint.Payload, 9)
	for i := range burst {
		burst[i] = payloadFor(d, rel, rel)
	}

	// First burst: exactly MaxBatch frames in one write → one batch of 4.
	if _, err := conn.Write(frameBytes(t, true, burst[:4]...)); err != nil {
		t.Fatal(err)
	}
	readReplies(t, conn, 4)
	h := srv.BatchHist()
	if h.Count() != 1 || h.Max() != 4*time.Microsecond {
		t.Fatalf("after 4-frame burst: %d batches, max %v (want 1 batch of 4)", h.Count(), h.Max())
	}

	// Second burst: 9 frames → batches of 4, 4, 1; every frame replied.
	if _, err := conn.Write(frameBytes(t, false, burst...)); err != nil {
		t.Fatal(err)
	}
	readReplies(t, conn, 9)
	if h.Count() != 4 {
		t.Fatalf("after 9-frame burst: %d batches recorded, want 4", h.Count())
	}
	if h.Max() != 4*time.Microsecond {
		t.Fatalf("a batch exceeded MaxBatch: max %v", h.Max())
	}
	if got := srv.Scored(); got != 13 {
		t.Fatalf("scored %d frames, want 13", got)
	}
}

// TestTCPCoalescerOversizedFrameMidBatch covers the violation flush
// boundary: a protocol-violating length prefix after valid pipelined
// frames must not sink them — the gathered batch is served, every valid
// frame gets its reply, then the connection drops.
func TestTCPCoalescerOversizedFrameMidBatch(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewTCPServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	conn, cleanup := pipeServe(srv)
	defer cleanup()

	rel := ua.Release{Vendor: ua.Chrome, Version: 112}
	valid := []*fingerprint.Payload{payloadFor(d, rel, rel), payloadFor(d, rel, rel), payloadFor(d, rel, rel)}
	burst := frameBytes(t, true, valid...)
	var bad [4]byte
	binary.BigEndian.PutUint32(bad[:], 1<<20) // over tcpMaxFrame
	burst = append(burst, bad[:]...)

	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}
	replies := readReplies(t, conn, 3)
	for i, r := range replies {
		if r[tcpReplySize-1]&tcpErrorFlag != 0 {
			t.Fatalf("valid frame %d got error reply", i)
		}
	}
	// The violating prefix drops the connection after the batch flushes.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := conn.Read(one[:]); err == nil {
		t.Fatal("server kept talking after oversized frame mid-batch")
	}
	if got := srv.Scored(); got != 3 {
		t.Fatalf("scored %d frames, want 3", got)
	}
}

// TestTCPServerFragmentedClientWrites drives the server with a frame
// split mid-length-prefix and mid-payload across delayed writes — the
// reassembly path a congested client exercises.
func TestTCPServerFragmentedClientWrites(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewTCPServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	rel := ua.Release{Vendor: ua.Chrome, Version: 112}
	raw := frameBytes(t, true, payloadFor(d, rel, rel))
	// Hello, then 2 bytes of the length prefix, then the rest in
	// 7-byte fragments with pauses between writes.
	splits := []int{4, 6}
	for at := 13; at < len(raw); at += 7 {
		splits = append(splits, at)
	}
	prev := 0
	for _, at := range append(splits, len(raw)) {
		if _, err := conn.Write(raw[prev:at]); err != nil {
			t.Fatal(err)
		}
		prev = at
		time.Sleep(2 * time.Millisecond)
	}
	var reply [tcpReplySize]byte
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		t.Fatal(err)
	}
	if reply[tcpReplySize-1]&tcpErrorFlag != 0 {
		t.Fatalf("fragmented frame got error reply: %v", reply)
	}
}

// TestTCPSubmitBatchFragmentedReplies exercises the client against a
// fake server that fragments every reply mid-frame — SubmitBatch must
// reassemble replies byte by byte.
func TestTCPSubmitBatchFragmentedReplies(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const n = 3
	serverErr := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		defer conn.Close()
		hello := make([]byte, len(tcpHello))
		if _, err := io.ReadFull(conn, hello); err != nil {
			serverErr <- err
			return
		}
		var lenBuf [4]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
				serverErr <- err
				return
			}
			frame := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
			if _, err := io.ReadFull(conn, frame); err != nil {
				serverErr <- err
				return
			}
		}
		// Reply with synthetic decisions, dribbled out one byte at a
		// time so every reply splits mid-frame on the client side.
		for i := 0; i < n; i++ {
			var reply [tcpReplySize]byte
			reply[0] = byte(i + 1) // distinguishable session prefix
			binary.BigEndian.PutUint16(reply[fingerprint.SessionIDSize:], uint16(i))
			reply[tcpReplySize-1] = tcpMatched
			for _, b := range reply {
				if _, err := conn.Write([]byte{b}); err != nil {
					serverErr <- err
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
		serverErr <- nil
	}()

	client, err := DialTCP(l.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	batch := make([]*fingerprint.Payload, n)
	for i := range batch {
		batch[i] = &fingerprint.Payload{UserAgent: "ua", Values: []int64{1, 2, 3}}
	}
	decs, err := client.SubmitBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, dec := range decs {
		if dec.SessionID[0] != byte(i+1) || dec.Cluster != i || !dec.Matched || dec.Err {
			t.Fatalf("decision %d reassembled wrong: %+v", i, dec)
		}
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
}

// TestTCPCoalescerCountsFlaggedAndBadFrames pins the new listener
// counters the /metrics exposition exports.
func TestTCPCoalescerCountsFlaggedAndBadFrames(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewTCPServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	client, err := DialTCP(l.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	lying := payloadFor(d, ua.Release{Vendor: ua.Firefox, Version: 110}, ua.Release{Vendor: ua.Chrome, Version: 112})
	bad := &fingerprint.Payload{UserAgent: "x", Values: []int64{1}}
	decs, err := client.SubmitBatch([]*fingerprint.Payload{lying, bad, lying})
	if err != nil {
		t.Fatal(err)
	}
	if !decs[0].Flagged || !decs[1].Err || !decs[2].Flagged {
		t.Fatalf("unexpected decisions: %+v", decs)
	}
	if got := srv.Flagged(); got != 2 {
		t.Fatalf("flagged counter %d, want 2", got)
	}
	if got := srv.BadFrames(); got != 1 {
		t.Fatalf("bad-frames counter %d, want 1", got)
	}
}
