package collect

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Journal is an append-only, size-rotated JSONL log of scoring decisions.
// The in-memory store bounds what the fraud team can query live; the
// journal is the durable record the risk pipeline replays (e.g. to
// re-score history after a retrain, or to audit a flagged session weeks
// later).
//
// Files are named <prefix>.000000.jsonl, <prefix>.000001.jsonl, ... in
// the journal directory; the active file rotates once it passes
// maxBytes. Writes are line-atomic under the journal's lock.
type Journal struct {
	dir      string
	prefix   string
	maxBytes int64

	mu     sync.Mutex
	file   *os.File
	writer *bufio.Writer
	size   int64
	seq    int
	closed bool
}

// OpenJournal creates or resumes a journal in dir. maxBytes ≤ 0 selects
// 16 MiB per segment. Resuming continues after the highest existing
// segment.
func OpenJournal(dir, prefix string, maxBytes int64) (*Journal, error) {
	if prefix == "" {
		prefix = "decisions"
	}
	if maxBytes <= 0 {
		maxBytes = 16 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("collect: journal dir: %w", err)
	}
	j := &Journal{dir: dir, prefix: prefix, maxBytes: maxBytes}
	segments, err := j.Segments()
	if err != nil {
		return nil, err
	}
	if n := len(segments); n > 0 {
		// Resume after the last existing segment to keep history
		// immutable.
		var last int
		fmt.Sscanf(filepath.Base(segments[n-1]), prefix+".%06d.jsonl", &last)
		j.seq = last + 1
	}
	if err := j.openSegment(); err != nil {
		return nil, err
	}
	return j, nil
}

func (j *Journal) segmentPath(seq int) string {
	return filepath.Join(j.dir, fmt.Sprintf("%s.%06d.jsonl", j.prefix, seq))
}

func (j *Journal) openSegment() error {
	f, err := os.OpenFile(j.segmentPath(j.seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("collect: journal segment: %w", err)
	}
	j.file = f
	j.writer = bufio.NewWriterSize(f, 32<<10)
	j.size = 0
	return nil
}

// Append writes one decision as a JSON line, rotating first if the active
// segment is full.
func (j *Journal) Append(d Decision) error {
	line, err := json.Marshal(&d)
	if err != nil {
		return fmt.Errorf("collect: journal marshal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("collect: journal closed")
	}
	if j.size+int64(len(line))+1 > j.maxBytes && j.size > 0 {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := j.writer.Write(line); err != nil {
		return fmt.Errorf("collect: journal write: %w", err)
	}
	if err := j.writer.WriteByte('\n'); err != nil {
		return fmt.Errorf("collect: journal write: %w", err)
	}
	j.size += int64(len(line)) + 1
	return nil
}

func (j *Journal) rotateLocked() error {
	if err := j.writer.Flush(); err != nil {
		return err
	}
	if err := j.file.Close(); err != nil {
		return err
	}
	j.seq++
	return j.openSegment()
}

// Sync flushes buffered lines to the OS.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	if err := j.writer.Flush(); err != nil {
		return err
	}
	return j.file.Sync()
}

// Close flushes and closes the active segment. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.writer.Flush(); err != nil {
		j.file.Close()
		return err
	}
	return j.file.Close()
}

// Segments lists the journal's files in sequence order.
func (j *Journal) Segments() ([]string, error) {
	pattern := filepath.Join(j.dir, j.prefix+".*.jsonl")
	matches, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}

// Replay streams every journaled decision, oldest first, to fn; a false
// return stops early. The journal should be Synced (or Closed) first so
// buffered lines are visible. Corrupted lines (torn writes after a
// crash) are skipped, counted, and reported.
func (j *Journal) Replay(fn func(Decision) bool) (corrupted int, err error) {
	segments, err := j.Segments()
	if err != nil {
		return 0, err
	}
	for _, seg := range segments {
		f, err := os.Open(seg)
		if err != nil {
			return corrupted, fmt.Errorf("collect: journal open %s: %w", seg, err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			var d Decision
			if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
				corrupted++
				continue
			}
			if !fn(d) {
				f.Close()
				return corrupted, nil
			}
		}
		scanErr := sc.Err()
		f.Close()
		if scanErr != nil {
			return corrupted, fmt.Errorf("collect: journal scan %s: %w", seg, scanErr)
		}
	}
	return corrupted, nil
}
