package collect

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"polygraph/internal/core"
	"polygraph/internal/fingerprint"
	"polygraph/internal/obs"
	"polygraph/internal/pipeline"
)

// The TCP batch path serves backend replay: risk systems that re-score
// large session archives (after a retrain, for backfills) keep a single
// connection open and stream framed payloads instead of paying per-HTTP
// overheads.
//
// Protocol (all integers big-endian):
//
//	client hello:  "bPT1" (4 bytes)
//	request frame: uint32 length | payload (fingerprint wire format)
//	reply frame:   sessionID[16] | uint16 cluster | uint16 riskFactor | uint8 flags
//
// flags bit 0 = flagged, bit 1 = matched, bit 7 = error (cluster and
// riskFactor are zero and the payload was rejected).

const (
	tcpHello      = "bPT1"
	tcpReplySize  = fingerprint.SessionIDSize + 2 + 2 + 1
	tcpFlagged    = 1 << 0
	tcpMatched    = 1 << 1
	tcpErrorFlag  = 1 << 7
	tcpMaxFrame   = fingerprint.MaxPayloadSize
	tcpIdleExpiry = 30 * time.Second
)

// TCPServer is the framed batch-scoring listener.
type TCPServer struct {
	model   *core.Model
	dep     *deployed
	store   *MemoryStore
	idle    time.Duration
	tracer  *obs.Tracer
	drift   *obs.DriftMonitor
	auditor *auditor

	// maxBatch caps how many pipelined frames a connection coalesces
	// into one scored batch; maxDelay optionally lets read-ahead wait
	// for stragglers (0 = drain only already-buffered frames).
	maxBatch int
	maxDelay time.Duration

	// hist records per-frame handling latency of scored frames; an
	// HTTP server with this listener attached (Server.AttachTCP)
	// exports it as the endpoint="tcp" histogram series.
	hist obs.Hist

	// batchHist records coalesced batch sizes on the histogram's
	// microsecond scale: a batch of n frames is recorded as n µs, so
	// the power-of-two bucket bounds read directly as frame counts and
	// the _sum is the total number of coalesced frames.
	batchHist obs.Hist

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// scored, flagged, badConn, badFrames, and badAudit are bumped
	// from concurrent connection goroutines; they must be atomic.
	scored    atomic.Int64
	flagged   atomic.Int64
	badConn   atomic.Int64
	badFrames atomic.Int64
	badAudit  atomic.Int64
}

// NewTCPServer builds the batch listener from the same config as the
// HTTP service. IdleTimeout guards slow-loris connections. Pass the
// HTTP server's Tracer in cfg.Tracer to interleave TCP frames into the
// same /debug/traces ring.
func NewTCPServer(cfg Config) (*TCPServer, error) {
	if cfg.Model == nil {
		return nil, errors.New("collect: Config.Model is required")
	}
	store := cfg.Store
	if store == nil {
		store = NewMemoryStore(4096)
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(obs.TracerConfig{
			RingSize:      cfg.TraceRingSize,
			Seed:          cfg.TraceSeed,
			SlowThreshold: cfg.SlowRequest,
			Logger:        cfg.Logger,
		})
	}
	maxBatch := cfg.TCPMaxBatch
	if maxBatch <= 0 {
		maxBatch = defaultTCPMaxBatch
	}
	s := &TCPServer{
		model:    cfg.Model,
		store:    store,
		idle:     tcpIdleExpiry,
		tracer:   tracer,
		drift:    cfg.Drift,
		maxBatch: maxBatch,
		maxDelay: cfg.TCPMaxDelay,
		conns:    map[net.Conn]struct{}{},
	}
	if cfg.Audit != nil {
		hash, err := cfg.Model.Hash()
		if err != nil {
			return nil, fmt.Errorf("collect: hash model: %w", err)
		}
		s.dep = &deployed{m: cfg.Model, hash: hash}
		s.auditor = &auditor{ledger: cfg.Audit, topK: cfg.AuditTopK}
	}
	return s, nil
}

// Scored counts frames scored successfully across all connections.
func (s *TCPServer) Scored() int64 { return s.scored.Load() }

// Flagged counts scored frames whose verdict was flagged.
func (s *TCPServer) Flagged() int64 { return s.flagged.Load() }

// BadConns counts connections dropped before or at the handshake.
func (s *TCPServer) BadConns() int64 { return s.badConn.Load() }

// BadFrames counts frames rejected after the handshake (decode, dim, or
// score failures) that were answered with the error flag.
func (s *TCPServer) BadFrames() int64 { return s.badFrames.Load() }

// Hist exposes the per-frame latency histogram.
func (s *TCPServer) Hist() *obs.Hist { return &s.hist }

// BatchHist exposes the coalesced batch-size histogram (frame counts on
// the microsecond scale).
func (s *TCPServer) BatchHist() *obs.Hist { return &s.batchHist }

// Serve accepts connections until the listener closes (via Close).
func (s *TCPServer) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		// Close raced ahead of Serve: treat as a clean shutdown.
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("collect: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting, closes live connections, and waits for handler
// goroutines to drain.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

func (s *TCPServer) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

func (s *TCPServer) handleConn(conn net.Conn) {
	defer s.dropConn(conn)
	// The read buffer must hold at least one full frame plus its length
	// prefix so read-ahead can Peek a whole frame; the write buffer is
	// sized so a full batch of replies flushes in one syscall.
	br := bufio.NewReaderSize(conn, tcpReadBufSize)
	wbuf := s.maxBatch * tcpReplySize
	if wbuf < 4096 {
		wbuf = 4096
	}
	bw := bufio.NewWriterSize(conn, wbuf)

	conn.SetReadDeadline(time.Now().Add(s.idle))
	hello := make([]byte, len(tcpHello))
	if _, err := io.ReadFull(br, hello); err != nil || string(hello) != tcpHello {
		s.badConn.Add(1)
		return
	}

	c := newCoalescer(s, conn, br, bw)
	for c.serveBatch() {
	}
}

// scoreFrame decodes, scores, and encodes one reply, reporting the
// trace status ("ok" or the failure kind). vec and scratch are the
// connection's reusable buffers, so steady-state frames allocate nothing
// for the numeric work.
func (s *TCPServer) scoreFrame(ctx context.Context, data []byte, vec []float64, scratch *core.Scratch) ([tcpReplySize]byte, string) {
	var reply [tcpReplySize]byte
	endDecode := pipeline.StartSpan(ctx, "decode")
	payload, err := fingerprint.UnmarshalBinary(data)
	endDecode()
	if err != nil {
		reply[tcpReplySize-1] = tcpErrorFlag
		s.badFrames.Add(1)
		if errors.Is(err, fingerprint.ErrBadVersion) {
			return reply, "bad_version"
		}
		return reply, "decode"
	}
	copy(reply[:fingerprint.SessionIDSize], payload.SessionID[:])
	if len(payload.Values) != s.model.Dim() {
		reply[tcpReplySize-1] = tcpErrorFlag
		s.badFrames.Add(1)
		return reply, "bad_dim"
	}
	for i, v := range payload.Values {
		vec[i] = float64(v)
	}
	endScore := pipeline.StartSpan(ctx, "score")
	res, err := s.model.ScoreStringWith(scratch, vec, payload.UserAgent)
	endScore()
	if err != nil {
		reply[tcpReplySize-1] = tcpErrorFlag
		s.badFrames.Add(1)
		return reply, "score"
	}
	if s.drift != nil {
		s.drift.Observe(vec)
	}
	binary.BigEndian.PutUint16(reply[fingerprint.SessionIDSize:], uint16(res.Cluster))
	binary.BigEndian.PutUint16(reply[fingerprint.SessionIDSize+2:], uint16(res.RiskFactor))
	var flags byte
	if res.Flagged() {
		flags |= tcpFlagged
	}
	if res.Matched {
		flags |= tcpMatched
	}
	reply[tcpReplySize-1] = flags
	s.scored.Add(1)
	sessionID := fmt.Sprintf("%x", payload.SessionID[:])
	if res.Flagged() {
		s.flagged.Add(1)
		s.store.Record(Decision{
			SessionID:  sessionID,
			Cluster:    res.Cluster,
			RiskFactor: res.RiskFactor,
			Flagged:    true,
		})
	}
	if s.auditor != nil {
		endAudit := pipeline.StartSpan(ctx, "audit")
		// vec is a per-connection scratch buffer reused by the next
		// frame; the ledger record must own its vector.
		owned := append([]float64(nil), vec...)
		if err := s.auditor.record(s.dep, obs.TraceFrom(ctx), EndpointTCP, sessionID, payload.UserAgent, owned, res); err != nil {
			s.badAudit.Add(1)
		}
		endAudit()
	}
	return reply, "ok"
}

// BatchDecision is one TCP reply, decoded.
type BatchDecision struct {
	SessionID  [fingerprint.SessionIDSize]byte
	Cluster    int
	RiskFactor int
	Flagged    bool
	Matched    bool
	Err        bool
}

// TCPClient streams payload batches over one connection.
type TCPClient struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// ReadTimeout and WriteTimeout bound each SubmitBatch's network
	// operations (0 = the 30-second fleet default). A stalled replica
	// then surfaces as a FailDown ClientError instead of a goroutine
	// pinned forever mid-read.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
}

// DialTCP connects and performs the hello handshake.
func DialTCP(addr string, timeout time.Duration) (*TCPClient, error) {
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, &ClientError{Kind: FailDown, Op: "dial", Err: err}
	}
	c := &TCPClient{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}
	if _, err := c.bw.WriteString(tcpHello); err != nil {
		conn.Close()
		return nil, &ClientError{Kind: FailDown, Op: "dial", Err: err}
	}
	return c, nil
}

// DialTCPRetry dials with a bounded number of attempts separated by
// jittered exponential backoff — the reconnect discipline a batch client
// uses when its replica is restarting. attempts <= 0 defaults to 3; the
// last failure is returned (always a *ClientError with Kind FailDown).
func DialTCPRetry(ctx context.Context, addr string, timeout time.Duration, attempts int, backoff *Backoff) (*TCPClient, error) {
	if attempts <= 0 {
		attempts = 3
	}
	if backoff == nil {
		backoff = NewBackoff(0, 0, 1)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(backoff.Delay(i - 1)):
			case <-ctx.Done():
				return nil, &ClientError{Kind: FailDown, Op: "dial", Err: ctx.Err()}
			}
		}
		c, err := DialTCP(addr, timeout)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("collect: dial %s: %d attempts exhausted: %w", addr, attempts, lastErr)
}

// deadlines arms the per-batch read/write deadlines.
func (c *TCPClient) deadlines() (read, write time.Duration) {
	read, write = c.ReadTimeout, c.WriteTimeout
	if read <= 0 {
		read = 30 * time.Second
	}
	if write <= 0 {
		write = 30 * time.Second
	}
	return read, write
}

// Close terminates the connection.
func (c *TCPClient) Close() error { return c.conn.Close() }

// SubmitBatch pipelines the payloads and reads all replies. Payloads
// that fail to encode locally are reported as Err entries without being
// sent.
func (c *TCPClient) SubmitBatch(payloads []*fingerprint.Payload) ([]BatchDecision, error) {
	readTO, writeTO := c.deadlines()
	out := make([]BatchDecision, len(payloads))
	sent := make([]int, 0, len(payloads)) // indices actually on the wire
	var lenBuf [4]byte
	c.conn.SetWriteDeadline(time.Now().Add(writeTO))
	for i, p := range payloads {
		enc, err := p.MarshalBinary()
		if err != nil {
			out[i] = BatchDecision{SessionID: p.SessionID, Err: true}
			continue
		}
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(enc)))
		if _, err := c.bw.Write(lenBuf[:]); err != nil {
			return nil, &ClientError{Kind: FailDown, Op: "write frame", Err: err}
		}
		if _, err := c.bw.Write(enc); err != nil {
			return nil, &ClientError{Kind: FailDown, Op: "write frame", Err: err}
		}
		sent = append(sent, i)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, &ClientError{Kind: FailDown, Op: "flush", Err: err}
	}
	var reply [tcpReplySize]byte
	for _, i := range sent {
		c.conn.SetReadDeadline(time.Now().Add(readTO))
		if _, err := io.ReadFull(c.br, reply[:]); err != nil {
			return nil, &ClientError{Kind: FailDown, Op: fmt.Sprintf("read reply %d", i), Err: err}
		}
		d := BatchDecision{}
		copy(d.SessionID[:], reply[:fingerprint.SessionIDSize])
		d.Cluster = int(binary.BigEndian.Uint16(reply[fingerprint.SessionIDSize:]))
		d.RiskFactor = int(binary.BigEndian.Uint16(reply[fingerprint.SessionIDSize+2:]))
		flags := reply[tcpReplySize-1]
		d.Flagged = flags&tcpFlagged != 0
		d.Matched = flags&tcpMatched != 0
		d.Err = flags&tcpErrorFlag != 0
		out[i] = d
	}
	return out, nil
}
