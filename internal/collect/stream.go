package collect

import (
	"context"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"polygraph/internal/core"
	"polygraph/internal/fingerprint"
	"polygraph/internal/obs"
)

// Scored pairs an input payload with its decision, for batch/replay
// pipelines (re-scoring historical traffic after a retrain, offline
// evaluation of a candidate model, ...).
type Scored struct {
	Payload  *fingerprint.Payload
	Decision Decision
	Err      error
}

// ScoreStream fans payloads out over a worker pool and streams decisions
// back. The output channel closes once the input closes and drains, or
// the context is canceled. Result order is not guaranteed; consumers
// needing order should key on Payload.SessionID.
//
// The pattern mirrors packet-processing pipelines: a bounded pool, one
// reusable vector buffer per worker, and backpressure through the
// unbuffered-by-default output channel.
func ScoreStream(ctx context.Context, model *core.Model, in <-chan *fingerprint.Payload, workers int) <-chan Scored {
	return ScoreStreamObserved(ctx, model, in, workers, nil)
}

// ScoreStreamObserved is ScoreStream with per-payload scoring latency
// recorded into hist (nil disables). Pass Server.Hist(EndpointBatch) to
// surface batch replay in a serving server's /metrics histogram family.
func ScoreStreamObserved(ctx context.Context, model *core.Model, in <-chan *fingerprint.Payload, workers int, hist *obs.Hist) <-chan Scored {
	if workers < 1 {
		workers = 1
	}
	out := make(chan Scored, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			vec := make([]float64, model.Dim())
			for {
				select {
				case <-ctx.Done():
					return
				case p, ok := <-in:
					if !ok {
						return
					}
					start := time.Now()
					s := scoreOne(model, p, vec)
					if hist != nil && s.Err == nil {
						hist.Record(time.Since(start))
					}
					select {
					case out <- s:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

func scoreOne(model *core.Model, p *fingerprint.Payload, vec []float64) Scored {
	s := Scored{Payload: p}
	if len(p.Values) != model.Dim() {
		s.Err = fmt.Errorf("collect: payload has %d features, model expects %d", len(p.Values), model.Dim())
		return s
	}
	for i, v := range p.Values {
		vec[i] = float64(v)
	}
	res, err := model.ScoreString(vec, p.UserAgent)
	if err != nil {
		s.Err = err
		return s
	}
	s.Decision = Decision{
		SessionID:  hex.EncodeToString(p.SessionID[:]),
		Cluster:    res.Cluster,
		Matched:    res.Matched,
		RiskFactor: res.RiskFactor,
		Flagged:    res.Flagged(),
	}
	return s
}
