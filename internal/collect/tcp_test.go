package collect

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"polygraph/internal/browser"
	"polygraph/internal/fingerprint"
	"polygraph/internal/ua"
)

// startTCP boots a TCP server on a loopback port and returns its address
// plus a shutdown func.
func startTCP(t *testing.T) (*TCPServer, string, func()) {
	t.Helper()
	m, d := testModel(t)
	_ = d
	srv, err := NewTCPServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	cleanup := func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	}
	return srv, l.Addr().String(), cleanup
}

func TestNewTCPServerRequiresModel(t *testing.T) {
	if _, err := NewTCPServer(Config{}); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestTCPBatchRoundtrip(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewTCPServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	client, err := DialTCP(l.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	lying := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Firefox, Version: 110})
	tooWide := &fingerprint.Payload{UserAgent: "x", Values: []int64{1, 2, 3}}

	batch := []*fingerprint.Payload{honest, lying, tooWide}
	decisions, err := client.SubmitBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 3 {
		t.Fatalf("%d decisions", len(decisions))
	}
	if decisions[0].Flagged || !decisions[0].Matched || decisions[0].Err {
		t.Fatalf("honest decision: %+v", decisions[0])
	}
	if !decisions[1].Flagged || decisions[1].RiskFactor != ua.MaxDistance {
		t.Fatalf("lying decision: %+v", decisions[1])
	}
	if !decisions[2].Err {
		t.Fatalf("wrong-width payload not errored: %+v", decisions[2])
	}
	if decisions[0].SessionID != honest.SessionID {
		t.Fatal("session id not echoed")
	}
	if srv.store.Len() != 1 {
		t.Fatalf("store has %d entries", srv.store.Len())
	}
}

func TestTCPLargeBatchPipelined(t *testing.T) {
	m, d := testModel(t)
	srv, _ := NewTCPServer(Config{Model: m})
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	go srv.Serve(l)
	defer srv.Close()

	client, err := DialTCP(l.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 2000
	batch := make([]*fingerprint.Payload, n)
	for i := range batch {
		rel := ua.Release{Vendor: ua.Chrome, Version: 110 + i%4}
		batch[i] = payloadFor(d, rel, rel)
	}
	decisions, err := client.SubmitBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, dec := range decisions {
		if dec.Err || dec.Flagged {
			t.Fatalf("decision %d: %+v", i, dec)
		}
	}
}

func TestTCPConcurrentConnections(t *testing.T) {
	m, d := testModel(t)
	srv, _ := NewTCPServer(Config{Model: m})
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	go srv.Serve(l)
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := DialTCP(l.Addr().String(), 0)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			rel := ua.Release{Vendor: ua.Firefox, Version: 110}
			batch := []*fingerprint.Payload{payloadFor(d, rel, rel)}
			for i := 0; i < 50; i++ {
				if _, err := client.SubmitBatch(batch); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPRejectsBadHello(t *testing.T) {
	_, addr, cleanup := startTCP(t)
	defer cleanup()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("EVIL"))
	// Server drops the connection: the next read sees EOF.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept talking after bad hello")
	}
}

func TestTCPRejectsOversizedFrame(t *testing.T) {
	_, addr, cleanup := startTCP(t)
	defer cleanup()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte(tcpHello))
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], 1<<20) // over tcpMaxFrame
	conn.Write(lenBuf[:])
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept talking after oversized frame")
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	srv, _, cleanup := startTCP(t)
	cleanup()
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func BenchmarkTCPBatchScore(b *testing.B) {
	m, d := testModel(b)
	srv, _ := NewTCPServer(Config{Model: m})
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	go srv.Serve(l)
	defer srv.Close()
	client, err := DialTCP(l.Addr().String(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	rel := ua.Release{Vendor: ua.Chrome, Version: 112}
	batch := make([]*fingerprint.Payload, 100)
	for i := range batch {
		batch[i] = payloadFor(d, rel, rel)
	}
	_ = browser.Blink // keep import symmetry with helpers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.SubmitBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
