package collect

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the limiter deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestLimiter(rate float64, burst int) (*RateLimiter, *fakeClock) {
	rl := NewRateLimiter(rate, burst)
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	rl.now = clock.now
	return rl, clock
}

func TestRateLimiterBurstThenBlock(t *testing.T) {
	rl, _ := newTestLimiter(10, 5)
	for i := 0; i < 5; i++ {
		if !rl.Allow("1.2.3.4") {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	if rl.Allow("1.2.3.4") {
		t.Fatal("request over burst allowed")
	}
	// Other clients unaffected.
	if !rl.Allow("5.6.7.8") {
		t.Fatal("independent client denied")
	}
}

func TestRateLimiterRefills(t *testing.T) {
	rl, clock := newTestLimiter(10, 5)
	for i := 0; i < 5; i++ {
		rl.Allow("k")
	}
	if rl.Allow("k") {
		t.Fatal("exhausted bucket allowed")
	}
	clock.advance(200 * time.Millisecond) // 2 tokens
	if !rl.Allow("k") || !rl.Allow("k") {
		t.Fatal("refilled tokens denied")
	}
	if rl.Allow("k") {
		t.Fatal("over-refill allowed")
	}
	// Refill caps at burst.
	clock.advance(time.Hour)
	for i := 0; i < 5; i++ {
		if !rl.Allow("k") {
			t.Fatalf("request %d after long idle denied", i)
		}
	}
	if rl.Allow("k") {
		t.Fatal("burst cap not enforced after idle")
	}
}

func TestRateLimiterDefaults(t *testing.T) {
	rl := NewRateLimiter(0, 0)
	if rl.rate != 50 || rl.burst != 100 {
		t.Fatalf("defaults %v/%v", rl.rate, rl.burst)
	}
}

func TestRateLimiterEviction(t *testing.T) {
	rl, clock := newTestLimiter(100, 10)
	// Fill one shard beyond the eviction threshold; keys sharing a
	// shard is fine — we just need many buckets overall.
	for i := 0; i < 16*4200; i++ {
		rl.Allow(string(rune(i)) + "x")
	}
	clock.advance(time.Hour) // everything refills => evictable
	rl.Allow("fresh-key")
	total := 0
	for i := range rl.shards {
		rl.shards[i].mu.Lock()
		total += len(rl.shards[i].buckets)
		rl.shards[i].mu.Unlock()
	}
	if total > 16*4200 {
		t.Fatalf("no eviction happened: %d buckets", total)
	}
}

func TestRateLimiterConcurrent(t *testing.T) {
	rl, _ := newTestLimiter(1000, 1000)
	var wg sync.WaitGroup
	allowed := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if rl.Allow("shared") {
					allowed[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range allowed {
		total += n
	}
	// 4000 attempts against burst 1000 (no time passes): exactly the
	// burst may pass.
	if total != 1000 {
		t.Fatalf("allowed %d, want exactly 1000", total)
	}
}

func TestRateLimitMiddleware(t *testing.T) {
	rl, _ := newTestLimiter(1, 2)
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h := rl.Middleware(inner)

	req := func(addr string) int {
		r := httptest.NewRequest(http.MethodGet, "/x", nil)
		r.RemoteAddr = addr
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec.Code
	}
	if req("9.9.9.9:1111") != http.StatusOK || req("9.9.9.9:2222") != http.StatusOK {
		t.Fatal("burst requests rejected")
	}
	// Same IP, different port: same bucket.
	if req("9.9.9.9:3333") != http.StatusTooManyRequests {
		t.Fatal("over-budget request allowed")
	}
	if req("8.8.8.8:1111") != http.StatusOK {
		t.Fatal("other client rejected")
	}
}
