package collect

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"polygraph/internal/obs"
	"polygraph/internal/slo"
	"polygraph/internal/ua"
)

// collectSLOSpec is a tight spec over the HTTP ingest path: 99%
// availability and 95% of scored requests under thresholdUs, evaluated
// over tiny windows so one tick is decisive.
func collectSLOSpec(thresholdUs float64) *slo.Spec {
	return &slo.Spec{
		Name:    "collect-test",
		Windows: slo.Windows{FastShortS: 1, FastLongS: 2, FastBurn: 5, SlowShortS: 2, SlowLongS: 4, SlowBurn: 2},
		Objectives: []slo.Objective{
			{Name: "avail", Kind: slo.KindAvailability, Target: 0.99, WindowS: 4},
			{Name: "lat", Kind: slo.KindLatency, Endpoint: EndpointBinary, Target: 0.95, ThresholdUs: thresholdUs, WindowS: 4},
		},
	}
}

// TestDebugSLOEndpoint pins the wiring contract: /debug/slo is 404
// until SetSLO attaches an engine, then serves the engine's JSON page,
// and the engine's self-scrape source reads MetricsText without a
// loopback round trip.
func TestDebugSLOEndpoint(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no engine attached: status = %d, want 404", resp.StatusCode)
	}

	eng, err := slo.NewEngine(slo.Config{
		Spec:      collectSLOSpec(1 << 30),
		IntervalS: 1,
		Scope:     "test-server",
		Source: func() *obs.Exposition {
			return obs.ParseExpositionString(srv.MetricsText())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetSLO(eng)
	if srv.SLO() != eng {
		t.Fatal("SLO() does not return the attached engine")
	}

	client := NewClient(ts.URL)
	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	for i := 0; i < 5; i++ {
		if _, err := client.Submit(context.Background(), honest); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.TickNow(); err != nil {
		t.Fatalf("TickNow over live exposition: %v", err)
	}

	resp, err = http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slo status = %d", resp.StatusCode)
	}
	page := string(body)
	for _, want := range []string{`"spec": "collect-test"`, `"scope": "test-server"`, `"tick": 1`} {
		if !strings.Contains(page, want) {
			t.Fatalf("/debug/slo missing %s:\n%s", want, page)
		}
	}
	st := eng.Status().Objectives[0]
	if st.Total != 5 || st.Good != 5 || st.Alerting {
		t.Fatalf("availability after clean traffic = %+v, want 5/5 green", st)
	}
}

// TestMetricsIncludesSLOFamilies requires the /metrics page of a server
// with an attached engine to carry the polygraph_slo_* families, the
// runtime self-telemetry families, and the uptime gauges — and to pass
// the exposition linter with all of them on the required list.
func TestMetricsIncludesSLOFamilies(t *testing.T) {
	m, _ := testModel(t)
	srv, err := NewServer(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := slo.NewEngine(slo.Config{Spec: collectSLOSpec(1 << 30), IntervalS: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetSLO(eng)
	expo := srv.MetricsText()
	problems, err := obs.Lint(strings.NewReader(expo),
		"polygraph_uptime_seconds",
		"polygraph_process_start_timestamp_seconds",
		"polygraph_go_goroutines",
		"polygraph_go_heap_live_bytes",
		"polygraph_go_gc_cycles_total",
		"polygraph_go_gc_pause_seconds",
		"polygraph_go_sched_latency_seconds",
		"polygraph_slo_target",
		"polygraph_slo_sli",
		"polygraph_slo_error_budget_remaining",
		"polygraph_slo_burn_rate",
		"polygraph_slo_alert",
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("/metrics with SLO engine fails lint: %s", p)
	}
}

// TestScoreDelayFaultDrill is the in-package seed of the acceptance
// fault test: Config.ScoreDelay pushes measured ingest latency past a
// tight latency objective, and one engine tick over the live exposition
// trips the multi-window burn-rate alert and flips the alert gauge.
func TestScoreDelayFaultDrill(t *testing.T) {
	m, d := testModel(t)
	srv, err := NewServer(Config{Model: m, ScoreDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 1024µs sits well under the injected 2ms delay: every
	// scored request lands in a bucket above the threshold.
	eng, err := slo.NewEngine(slo.Config{Spec: collectSLOSpec(1024), IntervalS: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetSLO(eng)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := NewClient(ts.URL)
	honest := payloadFor(d, ua.Release{Vendor: ua.Chrome, Version: 112}, ua.Release{Vendor: ua.Chrome, Version: 112})
	for i := 0; i < 8; i++ {
		if _, err := client.Submit(context.Background(), honest); err != nil {
			t.Fatal(err)
		}
	}
	eng.TickExposition(obs.ParseExpositionString(srv.MetricsText()))

	lat := eng.Status().Objectives[1]
	if lat.Total != 8 || lat.Good != 0 {
		t.Fatalf("latency SLI counters = %+v, want 0/8 under a 2ms injected delay", lat)
	}
	if !lat.Alerting || !eng.Alerting() {
		t.Fatalf("fault drill did not trip the burn-rate alert: %+v", lat)
	}
	if !strings.Contains(srv.MetricsText(), `polygraph_slo_alert{objective="lat"} 1`) {
		t.Fatalf("alert gauge not exported:\n%s", srv.MetricsText())
	}
}
