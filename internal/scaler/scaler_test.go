package scaler

import (
	"math"
	"testing"
	"testing/quick"

	"polygraph/internal/matrix"
	"polygraph/internal/rng"
)

func TestFitEmpty(t *testing.T) {
	if _, err := Fit(matrix.NewDense(0, 3), Config{}); err == nil {
		t.Fatal("expected error fitting empty matrix")
	}
}

func TestFitBadSkip(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, 2}})
	if _, err := Fit(m, Config{Skip: []bool{true}}); err == nil {
		t.Fatal("expected error for wrong-length skip mask")
	}
}

func TestTransformZeroMeanUnitVar(t *testing.T) {
	p := rng.New(3)
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{p.NormFloat64()*7 + 100, p.Float64() * 1000}
	}
	m := matrix.FromRows(rows)
	s, err := Fit(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(m)
	if err != nil {
		t.Fatal(err)
	}
	means := out.ColMeans()
	stds := out.ColStds()
	for j := 0; j < 2; j++ {
		if math.Abs(means[j]) > 1e-9 {
			t.Fatalf("col %d mean = %v", j, means[j])
		}
		if math.Abs(stds[j]-1) > 1e-9 {
			t.Fatalf("col %d std = %v", j, stds[j])
		}
	}
}

func TestConstantColumnNoNaN(t *testing.T) {
	m := matrix.FromRows([][]float64{{5, 1}, {5, 2}, {5, 3}})
	s, err := Fit(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		v := out.At(i, 0)
		if math.IsNaN(v) || v != 0 {
			t.Fatalf("constant column row %d = %v, want 0", i, v)
		}
	}
}

func TestSkipMask(t *testing.T) {
	m := matrix.FromRows([][]float64{{10, 0}, {20, 1}, {30, 1}})
	s, err := Fit(m, Config{Skip: []bool{false, true}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(m)
	if err != nil {
		t.Fatal(err)
	}
	// Binary column passes through untouched.
	for i := 0; i < 3; i++ {
		if out.At(i, 1) != m.At(i, 1) {
			t.Fatalf("skipped column modified at row %d", i)
		}
	}
	// Scaled column is centered.
	if math.Abs(out.ColMeans()[0]) > 1e-12 {
		t.Fatal("scaled column not centered")
	}
}

func TestTransformVecMatchesMatrix(t *testing.T) {
	p := rng.New(5)
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{p.NormFloat64(), p.NormFloat64() * 10, float64(p.Intn(2))}
	}
	m := matrix.FromRows(rows)
	s, err := Fit(m, Config{Skip: []bool{false, false, true}})
	if err != nil {
		t.Fatal(err)
	}
	full, _ := s.Transform(m)
	for i := range rows {
		vec, err := s.TransformVec(rows[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range vec {
			if vec[j] != full.At(i, j) {
				t.Fatalf("row %d col %d: vec %v != matrix %v", i, j, vec[j], full.At(i, j))
			}
		}
	}
}

func TestTransformVecInto(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	s, _ := Fit(m, Config{})
	dst := make([]float64, 2)
	if err := s.TransformVecInto([]float64{1, 2}, dst); err != nil {
		t.Fatal(err)
	}
	want, _ := s.TransformVec([]float64{1, 2})
	if dst[0] != want[0] || dst[1] != want[1] {
		t.Fatalf("into = %v, want %v", dst, want)
	}
	if err := s.TransformVecInto([]float64{1}, dst); err == nil {
		t.Fatal("expected error for short src")
	}
}

func TestDimensionMismatch(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, 2}})
	s, _ := Fit(m, Config{})
	if _, err := s.Transform(matrix.NewDense(1, 3)); err == nil {
		t.Fatal("expected transform dimension error")
	}
	if _, err := s.TransformVec([]float64{1}); err == nil {
		t.Fatal("expected vector dimension error")
	}
	if _, err := s.Inverse([]float64{1, 2, 3}); err == nil {
		t.Fatal("expected inverse dimension error")
	}
}

// TestInverseRoundtrip: Inverse(Transform(x)) == x for non-constant
// columns (property test).
func TestInverseRoundtrip(t *testing.T) {
	p := rng.New(7)
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{p.NormFloat64() * 50, p.Float64()*9 + 1}
	}
	m := matrix.FromRows(rows)
	s, err := Fit(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		in := []float64{a, b}
		tv, err := s.TransformVec(in)
		if err != nil {
			return false
		}
		back, err := s.Inverse(tv)
		if err != nil {
			return false
		}
		for j := range in {
			tol := 1e-9 * (1 + math.Abs(in[j]))
			if math.Abs(back[j]-in[j]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetSkip(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	s, _ := Fit(m, Config{})
	if err := s.SetSkip([]bool{true}); err == nil {
		t.Fatal("expected error for bad mask length")
	}
	if err := s.SetSkip([]bool{true, false}); err != nil {
		t.Fatal(err)
	}
	got := s.Skip()
	if len(got) != 2 || !got[0] || got[1] {
		t.Fatalf("skip = %v", got)
	}
	if err := s.SetSkip(nil); err != nil {
		t.Fatal(err)
	}
	if s.Skip() != nil {
		t.Fatal("nil mask not cleared")
	}
}

func TestColsAccessor(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, 2, 3}})
	// Single row: stds are zero but fit succeeds.
	s, err := Fit(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cols() != 3 {
		t.Fatalf("Cols = %d", s.Cols())
	}
}

func BenchmarkTransformVecInto28(b *testing.B) {
	p := rng.New(9)
	rows := make([][]float64, 256)
	for i := range rows {
		row := make([]float64, 28)
		for j := range row {
			row[j] = p.NormFloat64() * 100
		}
		rows[i] = row
	}
	s, err := Fit(matrix.FromRows(rows), Config{})
	if err != nil {
		b.Fatal(err)
	}
	src := rows[0]
	dst := make([]float64, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.TransformVecInto(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}
