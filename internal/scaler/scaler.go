// Package scaler implements the standard (z-score) feature scaler used in
// the Browser Polygraph pre-processing stage (paper §6.4.1): deviation-based
// property counts have widely different magnitudes, so each column is
// centered and divided by its standard deviation before PCA. Binary
// time-based columns can be exempted via Config.Skip, matching the paper's
// note that those "were already in the binary format which was suitable".
package scaler

import (
	"context"
	"fmt"

	"polygraph/internal/matrix"
	"polygraph/internal/parallel"
)

// Standard is a fitted standard scaler. Construct with Fit; the zero value
// transforms nothing and rejects all input.
type Standard struct {
	Means []float64
	Stds  []float64 // 0 entries are treated as 1 at transform time
	skip  []bool
}

// Config adjusts fitting behaviour.
type Config struct {
	// Skip marks columns to pass through untouched (e.g. binary
	// time-based features). Nil means scale every column. If non-nil,
	// its length must equal the column count.
	Skip []bool
}

// Fit learns per-column mean and standard deviation from m.
func Fit(m *matrix.Dense, cfg Config) (*Standard, error) {
	return FitContext(context.Background(), m, cfg)
}

// FitContext is Fit under a context: a done context refuses to start.
// Fitting is a single cheap column pass, so no further checks occur.
func FitContext(ctx context.Context, m *matrix.Dense, cfg Config) (*Standard, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	r, c := m.Dims()
	if r == 0 || c == 0 {
		return nil, fmt.Errorf("scaler: cannot fit empty %dx%d matrix", r, c)
	}
	if cfg.Skip != nil && len(cfg.Skip) != c {
		return nil, fmt.Errorf("scaler: skip mask has %d entries, want %d", len(cfg.Skip), c)
	}
	s := &Standard{
		Means: m.ColMeans(),
		Stds:  m.ColStds(),
	}
	if cfg.Skip != nil {
		s.skip = append([]bool(nil), cfg.Skip...)
	}
	return s, nil
}

// Cols returns the number of columns the scaler was fitted on.
func (s *Standard) Cols() int { return len(s.Means) }

// Skip returns a copy of the pass-through mask, or nil when every column
// is scaled.
func (s *Standard) Skip() []bool {
	if s.skip == nil {
		return nil
	}
	return append([]bool(nil), s.skip...)
}

// SetSkip replaces the pass-through mask; used when reloading a serialized
// model. A nil mask scales every column.
func (s *Standard) SetSkip(mask []bool) error {
	if mask != nil && len(mask) != len(s.Means) {
		return fmt.Errorf("scaler: skip mask has %d entries, want %d", len(mask), len(s.Means))
	}
	if mask == nil {
		s.skip = nil
		return nil
	}
	s.skip = append([]bool(nil), mask...)
	return nil
}

// Transform returns a scaled copy of m. Constant columns (std 0) are only
// centered, never divided, so they map to exactly zero rather than NaN.
func (s *Standard) Transform(m *matrix.Dense) (*matrix.Dense, error) {
	return s.TransformContext(context.Background(), m)
}

// TransformContext is Transform with cooperative cancellation at chunk
// boundaries. Rows are transformed serially in ascending chunk order, so
// a completed transform is bit-identical to Transform.
func (s *Standard) TransformContext(ctx context.Context, m *matrix.Dense) (*matrix.Dense, error) {
	r, c := m.Dims()
	if c != len(s.Means) {
		return nil, fmt.Errorf("scaler: transform on %d columns, fitted on %d", c, len(s.Means))
	}
	out := matrix.NewDense(r, c)
	if err := parallel.ForContext(ctx, 1, r, 0, func(start, end int) {
		for i := start; i < end; i++ {
			s.transformInto(m.RawRow(i), out.RawRow(i))
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformVec scales a single row in place-free fashion, returning a new
// slice. It is the hot path for online scoring.
func (s *Standard) TransformVec(v []float64) ([]float64, error) {
	if len(v) != len(s.Means) {
		return nil, fmt.Errorf("scaler: vector has %d entries, fitted on %d", len(v), len(s.Means))
	}
	out := make([]float64, len(v))
	s.transformInto(v, out)
	return out, nil
}

// TransformVecInto scales src into dst, which must have the fitted width.
// It performs no allocation, for latency-critical scoring paths.
func (s *Standard) TransformVecInto(src, dst []float64) error {
	if len(src) != len(s.Means) || len(dst) != len(s.Means) {
		return fmt.Errorf("scaler: TransformVecInto with src %d dst %d, fitted on %d",
			len(src), len(dst), len(s.Means))
	}
	s.transformInto(src, dst)
	return nil
}

func (s *Standard) transformInto(src, dst []float64) {
	if s.skip == nil {
		// No pass-through mask: drop the per-element branch; the
		// arithmetic is unchanged, so results stay bit-identical.
		for j, v := range src {
			d := v - s.Means[j]
			if sd := s.Stds[j]; sd > 0 {
				d /= sd
			}
			dst[j] = d
		}
		return
	}
	for j, v := range src {
		if s.skip[j] {
			dst[j] = v
			continue
		}
		d := v - s.Means[j]
		if sd := s.Stds[j]; sd > 0 {
			d /= sd
		}
		dst[j] = d
	}
}

// Inverse maps a scaled vector back to the original feature space; it is
// used by diagnostics that explain cluster centroids in raw-count terms.
func (s *Standard) Inverse(v []float64) ([]float64, error) {
	if len(v) != len(s.Means) {
		return nil, fmt.Errorf("scaler: inverse on %d entries, fitted on %d", len(v), len(s.Means))
	}
	out := make([]float64, len(v))
	for j, x := range v {
		if s.skip != nil && s.skip[j] {
			out[j] = x
			continue
		}
		sd := s.Stds[j]
		if sd == 0 {
			sd = 1
		}
		out[j] = x*sd + s.Means[j]
	}
	return out, nil
}
