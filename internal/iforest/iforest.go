// Package iforest implements Isolation Forest outlier detection (Liu,
// Ting & Zhou 2008), used in the Browser Polygraph pre-processing stage
// (paper §6.4.1) to drop anomalous fingerprints before clustering. The
// paper filters with a contamination threshold of 0.002%, eliminating 172
// of 205k rows.
package iforest

import (
	"context"
	"fmt"
	"math"
	"sort"

	"polygraph/internal/matrix"
	"polygraph/internal/parallel"
	"polygraph/internal/rng"
)

// Config controls forest construction.
type Config struct {
	// Trees is the ensemble size; 0 means the default of 100.
	Trees int
	// SampleSize is the sub-sample ψ per tree; 0 means min(256, n).
	SampleSize int
	// Seed drives deterministic construction.
	Seed uint64
	// Workers sizes the pool for tree construction and ScoreAll; 0 means
	// GOMAXPROCS, 1 forces serial. Every tree draws from its own PCG
	// stream split from Seed, so the forest is identical for every value.
	Workers int
}

// Forest is a fitted isolation forest.
type Forest struct {
	trees      []*node
	sampleSize int
	dim        int
	// workers is the pool size Config requested at fit time; ScoreAll and
	// FilterContamination reuse it (0 = GOMAXPROCS). Not serialized —
	// loaded forests default to the machine width.
	workers int

	// Flat structure-of-arrays mirror of trees, built once by finalize()
	// after Fit/Import so scoring walks contiguous slices instead of
	// chasing *node pointers. Node i is a leaf iff flatLeft[i] < 0;
	// internal nodes route x[flatFeature[i]] < flatThr[i] to
	// flatLeft/flatRight (absolute indices into the same arrays), and
	// leaves carry their c(size) path adjustment in flatAdj. flatRoots[t]
	// is tree t's root (trees are laid out preorder, back to back). norm
	// caches avgPathLength(sampleSize), hoisted out of the per-vector
	// Score formula. A hand-built Forest without these arrays still scores
	// through the pointer walk, bit-identically.
	flatFeature []int32
	flatThr     []float64
	flatLeft    []int32
	flatRight   []int32
	flatAdj     []float64
	flatRoots   []int32
	norm        float64
}

type node struct {
	// Internal nodes: split on feature < threshold.
	feature   int
	threshold float64
	left      *node
	right     *node
	// Leaves: size is the number of training points that reached here.
	size int
	leaf bool
}

// Fit builds a forest over the rows of m.
func Fit(m *matrix.Dense, cfg Config) (*Forest, error) {
	return FitContext(context.Background(), m, cfg)
}

// FitContext is Fit with cooperative cancellation: the serial sampling
// pass checks ctx once per tree and the parallel build checks it at
// every tree boundary, so cancellation aborts within one tree of work. A
// forest that finishes fitting is bit-identical to Fit's.
func FitContext(ctx context.Context, m *matrix.Dense, cfg Config) (*Forest, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n, d := m.Dims()
	if n == 0 || d == 0 {
		return nil, fmt.Errorf("iforest: empty input %dx%d", n, d)
	}
	trees := cfg.Trees
	if trees == 0 {
		trees = 100
	}
	psi := cfg.SampleSize
	if psi == 0 {
		psi = 256
	}
	if psi > n {
		psi = n
	}
	maxDepth := int(math.Ceil(math.Log2(float64(psi)))) + 1

	f := &Forest{sampleSize: psi, dim: d, trees: make([]*node, trees), workers: cfg.Workers}
	// Sampling walks one shared shuffle state across trees (tree t's ψ
	// rows depend on every earlier shuffle), so it runs serially up
	// front — O(trees·n) swaps, noise next to tree construction. Each
	// tree's PCG stream is then left exactly where buildTree expects it,
	// and the expensive part — building — fans out over the pool. The
	// forest is bit-identical for every worker count.
	base := rng.New(cfg.Seed)
	gens := make([]*rng.PCG, trees)
	samples := make([][]int, trees)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for t := 0; t < trees; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gen := base.Split(fmt.Sprintf("tree-%d", t))
		// Sample ψ rows without replacement.
		gen.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		gens[t] = gen
		samples[t] = append([]int(nil), idx[:psi]...)
	}
	if err := parallel.ForContext(ctx, cfg.Workers, trees, 1, func(start, end int) {
		for t := start; t < end; t++ {
			f.trees[t] = buildTree(m, samples[t], 0, maxDepth, gens[t])
		}
	}); err != nil {
		return nil, err
	}
	f.finalize()
	return f, nil
}

// finalize flattens the pointer trees into the structure-of-arrays
// layout and hoists the avgPathLength(sampleSize) normalization. Called
// once at the end of Fit and Import; scoring never mutates the arrays.
func (f *Forest) finalize() {
	total := 0
	for _, t := range f.trees {
		total += countNodes(t)
	}
	f.flatFeature = make([]int32, total)
	f.flatThr = make([]float64, total)
	f.flatLeft = make([]int32, total)
	f.flatRight = make([]int32, total)
	f.flatAdj = make([]float64, total)
	f.flatRoots = make([]int32, len(f.trees))
	next := 0
	for t, root := range f.trees {
		f.flatRoots[t] = int32(next)
		next = f.flatten(root, next)
	}
	f.norm = avgPathLength(f.sampleSize)
}

func countNodes(n *node) int {
	if n.leaf {
		return 1
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}

// flatten writes the subtree rooted at n starting at index at (preorder)
// and returns the next free index.
func (f *Forest) flatten(n *node, at int) int {
	idx := at
	at++
	if n.leaf {
		f.flatFeature[idx] = -1
		f.flatLeft[idx] = -1
		f.flatRight[idx] = -1
		f.flatAdj[idx] = avgPathLength(n.size)
		return at
	}
	f.flatFeature[idx] = int32(n.feature)
	f.flatThr[idx] = n.threshold
	l := at
	at = f.flatten(n.left, at)
	r := at
	at = f.flatten(n.right, at)
	f.flatLeft[idx] = int32(l)
	f.flatRight[idx] = int32(r)
	return at
}

func buildTree(m *matrix.Dense, sample []int, depth, maxDepth int, gen *rng.PCG) *node {
	if depth >= maxDepth || len(sample) <= 1 {
		return &node{leaf: true, size: len(sample)}
	}
	_, d := m.Dims()
	// Pick a feature with spread; give up after a bounded number of
	// tries (all-constant subsample).
	for try := 0; try < d; try++ {
		feat := gen.Intn(d)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range sample {
			v := m.At(i, feat)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			continue
		}
		thr := lo + gen.Float64()*(hi-lo)
		var left, right []int
		for _, i := range sample {
			if m.At(i, feat) < thr {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			continue
		}
		return &node{
			feature:   feat,
			threshold: thr,
			left:      buildTree(m, left, depth+1, maxDepth, gen),
			right:     buildTree(m, right, depth+1, maxDepth, gen),
		}
	}
	return &node{leaf: true, size: len(sample)}
}

// pathLength walks x down a tree, adding the standard c(size) adjustment
// at leaves holding more than one training point.
func pathLength(n *node, x []float64, depth float64) float64 {
	if n.leaf {
		return depth + avgPathLength(n.size)
	}
	if x[n.feature] < n.threshold {
		return pathLength(n.left, x, depth+1)
	}
	return pathLength(n.right, x, depth+1)
}

// avgPathLength is c(n), the average path length of an unsuccessful BST
// search among n points: 2·H(n−1) − 2(n−1)/n.
func avgPathLength(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649015329
	return 2*h - 2*float64(n-1)/float64(n)
}

// Score returns the anomaly score of x in [0, 1]; higher is more
// anomalous. Scores near 0.5 indicate unremarkable points.
func (f *Forest) Score(x []float64) float64 {
	if len(x) != f.dim {
		panic(fmt.Sprintf("iforest: score on %d-dim vector, fitted on %d", len(x), f.dim))
	}
	total := 0.0
	if f.flatRoots != nil {
		for t := range f.trees {
			total += f.pathLengthFlat(t, x)
		}
	} else {
		for _, t := range f.trees {
			total += pathLength(t, x, 0)
		}
	}
	mean := total / float64(len(f.trees))
	return math.Pow(2, -mean/f.normalization())
}

// normalization returns the hoisted avgPathLength(sampleSize), falling
// back to a live computation for hand-built forests that were never
// finalized.
func (f *Forest) normalization() float64 {
	if f.flatRoots != nil {
		return f.norm
	}
	return avgPathLength(f.sampleSize)
}

// pathLengthFlat is pathLength over the flat arrays: an iterative walk
// from tree t's root, counting edges and adding the leaf adjustment.
// Depth accrues by float64 increments of exactly 1, just like the
// recursive walk's depth+1 parameter, so the result is bit-identical.
func (f *Forest) pathLengthFlat(t int, x []float64) float64 {
	i := f.flatRoots[t]
	depth := 0.0
	for f.flatLeft[i] >= 0 {
		if x[f.flatFeature[i]] < f.flatThr[i] {
			i = f.flatLeft[i]
		} else {
			i = f.flatRight[i]
		}
		depth++
	}
	return depth + f.flatAdj[i]
}

// scoreCostNs estimates one row's scoring cost for adaptive dispatch:
// every tree walks ~log2(ψ)+1 nodes at a handful of ns per node.
func (f *Forest) scoreCostNs() float64 {
	depth := 1.0
	if f.sampleSize > 1 {
		depth = math.Log2(float64(f.sampleSize)) + 1
	}
	return 100 + 8*float64(len(f.trees))*depth
}

// ScoreAll scores every row of data over the worker pool sized at fit
// time (rows are independent, so pool size never changes the scores).
func (f *Forest) ScoreAll(data *matrix.Dense) ([]float64, error) {
	return f.ScoreAllWorkers(data, f.workers)
}

// ScoreAllWorkers is ScoreAll with an explicit pool size (0 = GOMAXPROCS,
// 1 = serial).
func (f *Forest) ScoreAllWorkers(data *matrix.Dense, workers int) ([]float64, error) {
	return f.ScoreAllContext(context.Background(), data, workers)
}

// ScoreAllContext is ScoreAllWorkers with cooperative cancellation at
// chunk boundaries; rows are independent, so a completed pass is
// identical for every pool size and context.
func (f *Forest) ScoreAllContext(ctx context.Context, data *matrix.Dense, workers int) ([]float64, error) {
	r, d := data.Dims()
	if d != f.dim {
		return nil, fmt.Errorf("iforest: score on %d-dim rows, fitted on %d", d, f.dim)
	}
	out := make([]float64, r)
	plan := parallel.PlanFor(workers, r, f.scoreCostNs())
	if err := parallel.ForContext(ctx, plan.Workers, r, plan.Chunk, func(start, end int) {
		f.scoreRows(data, out, start, end)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// scoreRows scores rows [start, end) into out. With the flat layout it
// traverses tree-by-tree across the whole chunk — the tree's arrays stay
// hot in cache while every row walks them — accumulating per-row path
// totals in tree order, which is exactly the summation order Score uses,
// so the batch is bit-identical to row-at-a-time scoring.
func (f *Forest) scoreRows(data *matrix.Dense, out []float64, start, end int) {
	if f.flatRoots == nil {
		for i := start; i < end; i++ {
			out[i] = f.Score(data.RawRow(i))
		}
		return
	}
	for i := start; i < end; i++ {
		out[i] = 0
	}
	for t := range f.trees {
		for i := start; i < end; i++ {
			out[i] += f.pathLengthFlat(t, data.RawRow(i))
		}
	}
	nTrees := float64(len(f.trees))
	for i := start; i < end; i++ {
		mean := out[i] / nTrees
		out[i] = math.Pow(2, -mean/f.norm)
	}
}

// FilterContamination returns the indices of rows to KEEP after removing
// the `contamination` fraction (0 ≤ c < 1) with the highest anomaly
// scores. The returned slice preserves the original row order. At least
// one row is always removed when contamination > 0 and n > 0, matching
// the intent of a strictly positive threshold like the paper's 0.002%.
func (f *Forest) FilterContamination(data *matrix.Dense, contamination float64) (keep, drop []int, err error) {
	return f.FilterContaminationContext(context.Background(), data, contamination)
}

// FilterContaminationContext is FilterContamination with cooperative
// cancellation during the scoring pass (the sort/selection tail is
// cheap and runs to completion once scoring finishes).
func (f *Forest) FilterContaminationContext(ctx context.Context, data *matrix.Dense, contamination float64) (keep, drop []int, err error) {
	if contamination < 0 || contamination >= 1 {
		return nil, nil, fmt.Errorf("iforest: contamination %v out of [0,1)", contamination)
	}
	scores, err := f.ScoreAllContext(ctx, data, f.workers)
	if err != nil {
		return nil, nil, err
	}
	n := len(scores)
	if n == 0 || contamination == 0 {
		keep = make([]int, n)
		for i := range keep {
			keep[i] = i
		}
		return keep, nil, nil
	}
	nDrop := int(math.Round(contamination * float64(n)))
	if nDrop == 0 {
		nDrop = 1
	}
	// Find the cut score via a sorted copy; ties broken by index order
	// to keep the result deterministic.
	type scored struct {
		idx int
		s   float64
	}
	all := make([]scored, n)
	for i, s := range scores {
		all[i] = scored{idx: i, s: s}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].idx < all[j].idx
	})
	dropSet := make(map[int]bool, nDrop)
	for i := 0; i < nDrop; i++ {
		dropSet[all[i].idx] = true
	}
	for i := 0; i < n; i++ {
		if dropSet[i] {
			drop = append(drop, i)
		} else {
			keep = append(keep, i)
		}
	}
	return keep, drop, nil
}
