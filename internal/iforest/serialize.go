package iforest

import "fmt"

// Serialization: the production model ships the trained forest to the
// scoring tier, where it backs the novelty guard (fingerprints unlike
// anything seen in training are suspicious even when their cluster
// matches their claim).

// Dump is the flattened wire form of a Forest. Nodes are stored in
// preorder per tree; Left/Right index into the tree's node slice, -1 for
// leaves.
type Dump struct {
	SampleSize int          `json:"sample_size"`
	Dim        int          `json:"dim"`
	Trees      [][]NodeDump `json:"trees"`
}

// NodeDump is one flattened node.
type NodeDump struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int     `json:"l"`
	Right     int     `json:"r"`
	Size      int     `json:"n"`
}

// Export flattens the forest.
func (f *Forest) Export() *Dump {
	d := &Dump{SampleSize: f.sampleSize, Dim: f.dim, Trees: make([][]NodeDump, len(f.trees))}
	for i, root := range f.trees {
		var nodes []NodeDump
		flattenTree(root, &nodes)
		d.Trees[i] = nodes
	}
	return d
}

// flattenTree appends the subtree rooted at n and returns its index.
func flattenTree(n *node, out *[]NodeDump) int {
	idx := len(*out)
	if n.leaf {
		*out = append(*out, NodeDump{Left: -1, Right: -1, Size: n.size})
		return idx
	}
	*out = append(*out, NodeDump{Feature: n.feature, Threshold: n.threshold})
	left := flattenTree(n.left, out)
	right := flattenTree(n.right, out)
	(*out)[idx].Left = left
	(*out)[idx].Right = right
	return idx
}

// Import reconstructs a forest from its dump, validating structure so a
// corrupted model file cannot produce out-of-bounds walks.
func Import(d *Dump) (*Forest, error) {
	if d == nil || d.SampleSize < 1 || d.Dim < 1 {
		return nil, fmt.Errorf("iforest: invalid dump header")
	}
	f := &Forest{sampleSize: d.SampleSize, dim: d.Dim, trees: make([]*node, len(d.Trees))}
	if len(d.Trees) == 0 {
		return nil, fmt.Errorf("iforest: dump has no trees")
	}
	for ti, nodes := range d.Trees {
		if len(nodes) == 0 {
			return nil, fmt.Errorf("iforest: tree %d empty", ti)
		}
		root, err := rebuildTree(nodes, 0, d.Dim, map[int]bool{})
		if err != nil {
			return nil, fmt.Errorf("iforest: tree %d: %w", ti, err)
		}
		f.trees[ti] = root
	}
	f.finalize()
	return f, nil
}

func rebuildTree(nodes []NodeDump, idx, dim int, visiting map[int]bool) (*node, error) {
	if idx < 0 || idx >= len(nodes) {
		return nil, fmt.Errorf("node index %d out of range", idx)
	}
	if visiting[idx] {
		return nil, fmt.Errorf("cycle at node %d", idx)
	}
	visiting[idx] = true
	nd := nodes[idx]
	if nd.Left == -1 && nd.Right == -1 {
		if nd.Size < 0 {
			return nil, fmt.Errorf("leaf %d has negative size", idx)
		}
		return &node{leaf: true, size: nd.Size}, nil
	}
	if nd.Feature < 0 || nd.Feature >= dim {
		return nil, fmt.Errorf("node %d splits on feature %d of %d", idx, nd.Feature, dim)
	}
	left, err := rebuildTree(nodes, nd.Left, dim, visiting)
	if err != nil {
		return nil, err
	}
	right, err := rebuildTree(nodes, nd.Right, dim, visiting)
	if err != nil {
		return nil, err
	}
	return &node{feature: nd.Feature, threshold: nd.Threshold, left: left, right: right}, nil
}

// Dim returns the feature dimensionality the forest was fitted on.
func (f *Forest) Dim() int { return f.dim }
