package iforest

import (
	"testing"

	"polygraph/internal/matrix"
	"polygraph/internal/rng"
)

// TestFitWorkerCountInvariance pins the internal/parallel contract at the
// forest layer: every tree draws from its own PCG stream split from the
// seed, so the fitted forest and its scores are identical for every pool
// size.
func TestFitWorkerCountInvariance(t *testing.T) {
	gen := rng.NewString("iforest-workers-test")
	const n, d = 800, 6
	m := matrix.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Set(i, j, gen.NormFloat64())
		}
	}
	base := Config{Trees: 60, SampleSize: 128, Seed: 7}

	serialCfg := base
	serialCfg.Workers = 1
	serial, err := Fit(m, serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	serialScores, err := serial.ScoreAllWorkers(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		cfg := base
		cfg.Workers = workers
		got, err := Fit(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		scores, err := got.ScoreAllWorkers(m, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range scores {
			if scores[i] != serialScores[i] {
				t.Fatalf("Workers=%d: score[%d] %v != serial %v", workers, i, scores[i], serialScores[i])
			}
		}
	}
}
