package iforest

import (
	"encoding/json"
	"math"
	"testing"

	"polygraph/internal/matrix"
	"polygraph/internal/rng"
)

// clusterWithOutliers builds n inlier points near the origin plus a few
// far-away outliers, returning the matrix and the outlier row indices.
func clusterWithOutliers(n, outliers int, seed uint64) (*matrix.Dense, map[int]bool) {
	p := rng.New(seed)
	rows := make([][]float64, 0, n+outliers)
	for i := 0; i < n; i++ {
		rows = append(rows, []float64{p.NormFloat64(), p.NormFloat64()})
	}
	outlierIdx := map[int]bool{}
	for i := 0; i < outliers; i++ {
		rows = append(rows, []float64{100 + p.NormFloat64(), -100 + p.NormFloat64()})
		outlierIdx[n+i] = true
	}
	return matrix.FromRows(rows), outlierIdx
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(matrix.NewDense(0, 2), Config{}); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestOutliersScoreHigher(t *testing.T) {
	m, outliers := clusterWithOutliers(500, 5, 1)
	f, err := Fit(m, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := f.ScoreAll(m)
	if err != nil {
		t.Fatal(err)
	}
	var inMax, outMin float64 = 0, 1
	for i, s := range scores {
		if outliers[i] {
			if s < outMin {
				outMin = s
			}
		} else if s > inMax {
			inMax = s
		}
	}
	if outMin <= inMax {
		t.Fatalf("outlier min score %v <= inlier max score %v", outMin, inMax)
	}
}

func TestScoreRange(t *testing.T) {
	m, _ := clusterWithOutliers(300, 3, 2)
	f, err := Fit(m, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	scores, _ := f.ScoreAll(m)
	for i, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score[%d] = %v out of [0,1]", i, s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	m, _ := clusterWithOutliers(200, 2, 3)
	a, err := Fit(m, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(m, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := a.ScoreAll(m)
	sb, _ := b.ScoreAll(m)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same seed produced different score at %d", i)
		}
	}
}

func TestScorePanicsOnBadDim(t *testing.T) {
	m, _ := clusterWithOutliers(100, 1, 4)
	f, _ := Fit(m, Config{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong-width score")
		}
	}()
	f.Score([]float64{1, 2, 3})
}

func TestScoreAllDimError(t *testing.T) {
	m, _ := clusterWithOutliers(100, 1, 5)
	f, _ := Fit(m, Config{Seed: 1})
	if _, err := f.ScoreAll(matrix.NewDense(3, 5)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestFilterContaminationDropsOutliers(t *testing.T) {
	m, outliers := clusterWithOutliers(1000, 4, 6)
	f, err := Fit(m, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	keep, drop, err := f.FilterContamination(m, 4.0/1004.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(drop) != 4 {
		t.Fatalf("dropped %d rows, want 4", len(drop))
	}
	for _, d := range drop {
		if !outliers[d] {
			t.Fatalf("dropped inlier row %d", d)
		}
	}
	if len(keep)+len(drop) != 1004 {
		t.Fatalf("keep+drop = %d", len(keep)+len(drop))
	}
	// Keep preserves original order.
	for i := 1; i < len(keep); i++ {
		if keep[i] <= keep[i-1] {
			t.Fatal("keep indices not in order")
		}
	}
}

func TestFilterContaminationZero(t *testing.T) {
	m, _ := clusterWithOutliers(50, 1, 7)
	f, _ := Fit(m, Config{Seed: 1})
	keep, drop, err := f.FilterContamination(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(drop) != 0 || len(keep) != 51 {
		t.Fatalf("keep=%d drop=%d", len(keep), len(drop))
	}
}

func TestFilterContaminationTinyThresholdDropsAtLeastOne(t *testing.T) {
	// The paper's threshold is 0.002%; on 205k rows that's a handful,
	// but on small data a naive round would drop zero. We guarantee ≥1.
	m, _ := clusterWithOutliers(100, 1, 8)
	f, _ := Fit(m, Config{Seed: 1})
	_, drop, err := f.FilterContamination(m, 0.00002)
	if err != nil {
		t.Fatal(err)
	}
	if len(drop) != 1 {
		t.Fatalf("dropped %d, want exactly 1", len(drop))
	}
}

func TestFilterContaminationBadRange(t *testing.T) {
	m, _ := clusterWithOutliers(50, 1, 9)
	f, _ := Fit(m, Config{Seed: 1})
	if _, _, err := f.FilterContamination(m, -0.1); err == nil {
		t.Fatal("expected error for negative contamination")
	}
	if _, _, err := f.FilterContamination(m, 1.0); err == nil {
		t.Fatal("expected error for contamination = 1")
	}
}

func TestConstantDataDoesNotHang(t *testing.T) {
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{5, 5, 5}
	}
	m := matrix.FromRows(rows)
	f, err := Fit(m, Config{Seed: 1, Trees: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := f.Score([]float64{5, 5, 5})
	if s < 0 || s > 1 {
		t.Fatalf("score on constant data = %v", s)
	}
}

func TestAvgPathLength(t *testing.T) {
	if avgPathLength(0) != 0 || avgPathLength(1) != 0 {
		t.Fatal("c(n) for n<=1 should be 0")
	}
	// c(2) = 2·H(1) − 2·(1/2) = 2·(ln1+γ) − 1 ≈ 0.1544.
	got := avgPathLength(2)
	if got < 0.15 || got > 0.16 {
		t.Fatalf("c(2) = %v", got)
	}
	if avgPathLength(100) <= avgPathLength(10) {
		t.Fatal("c(n) must grow with n")
	}
}

func TestSmallSampleSize(t *testing.T) {
	m, _ := clusterWithOutliers(10, 1, 10)
	f, err := Fit(m, Config{Seed: 1, SampleSize: 4, Trees: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ScoreAll(m); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScore(b *testing.B) {
	m, _ := clusterWithOutliers(2000, 10, 11)
	f, err := Fit(m, Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := m.Row(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Score(x)
	}
}

func BenchmarkFit2000(b *testing.B) {
	m, _ := clusterWithOutliers(2000, 10, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(m, Config{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExportImportRoundtrip(t *testing.T) {
	m, _ := clusterWithOutliers(500, 5, 13)
	f, err := Fit(m, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dump := f.Export()
	back, err := Import(dump)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim() != f.Dim() {
		t.Fatal("dim lost")
	}
	orig, _ := f.ScoreAll(m)
	rt, _ := back.ScoreAll(m)
	for i := range orig {
		if orig[i] != rt[i] {
			t.Fatalf("score %d differs after roundtrip: %v vs %v", i, orig[i], rt[i])
		}
	}
}

func TestImportRejectsCorruptDumps(t *testing.T) {
	m, _ := clusterWithOutliers(100, 2, 14)
	f, _ := Fit(m, Config{Seed: 1, Trees: 4})
	good := f.Export()

	cases := []func(*Dump){
		func(d *Dump) { d.SampleSize = 0 },
		func(d *Dump) { d.Dim = 0 },
		func(d *Dump) { d.Trees = nil },
		func(d *Dump) { d.Trees[0] = nil },
		func(d *Dump) { d.Trees[0][0].Left = 9999 },
		func(d *Dump) { d.Trees[0][0].Left = 0 }, // cycle
		func(d *Dump) {
			if d.Trees[0][0].Left != -1 {
				d.Trees[0][0].Feature = 99 // out-of-range split
			} else {
				d.Trees[0][0].Size = -1
			}
		},
	}
	for i, corrupt := range cases {
		// Fresh dump each time; corruption is destructive.
		d := f.Export()
		corrupt(d)
		if _, err := Import(d); err == nil {
			t.Fatalf("case %d: corrupted dump accepted", i)
		}
	}
	if _, err := Import(nil); err == nil {
		t.Fatal("nil dump accepted")
	}
	// The pristine dump still imports.
	if _, err := Import(good); err != nil {
		t.Fatal(err)
	}
}

func TestExportJSONStable(t *testing.T) {
	m, _ := clusterWithOutliers(100, 1, 15)
	f, _ := Fit(m, Config{Seed: 3, Trees: 8})
	a, err := json.Marshal(f.Export())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(f.Export())
	if string(a) != string(b) {
		t.Fatal("export not deterministic")
	}
	var d Dump
	if err := json.Unmarshal(a, &d); err != nil {
		t.Fatal(err)
	}
	if _, err := Import(&d); err != nil {
		t.Fatal(err)
	}
}

func TestFlatTraversalMatchesPointerWalk(t *testing.T) {
	data, _ := clusterWithOutliers(300, 12, 21)
	f, err := Fit(data, Config{Trees: 50, SampleSize: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if f.flatRoots == nil {
		t.Fatal("Fit did not finalize the flat layout")
	}
	// Score walks the flat arrays; recompute each score through the
	// recursive pointer walk and demand bit equality — flattening is a
	// layout change, not an arithmetic change.
	r, _ := data.Dims()
	for i := 0; i < r; i++ {
		x := data.RawRow(i)
		total := 0.0
		for _, tr := range f.trees {
			total += pathLength(tr, x, 0)
		}
		want := math.Pow(2, -(total/float64(len(f.trees)))/avgPathLength(f.sampleSize))
		if got := f.Score(x); got != want {
			t.Fatalf("row %d: flat score %v, pointer walk %v", i, got, want)
		}
	}
}

func TestScoreAllMatchesPerRowScore(t *testing.T) {
	data, _ := clusterWithOutliers(400, 20, 5)
	f, err := Fit(data, Config{Trees: 40, SampleSize: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := f.ScoreAll(data)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := data.Dims()
	for i := 0; i < r; i++ {
		if got := f.Score(data.RawRow(i)); batch[i] != got {
			t.Fatalf("row %d: batch %v, single %v", i, batch[i], got)
		}
	}
}

func TestNormalizationHoisted(t *testing.T) {
	data, _ := clusterWithOutliers(200, 8, 7)
	f, err := Fit(data, Config{Trees: 20, SampleSize: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := avgPathLength(f.sampleSize); f.norm != want {
		t.Fatalf("hoisted norm %v, want avgPathLength(%d) = %v", f.norm, f.sampleSize, want)
	}
	// A hand-built forest with no flat layout still normalizes live.
	bare := &Forest{sampleSize: f.sampleSize}
	if bare.normalization() != avgPathLength(f.sampleSize) {
		t.Fatal("fallback normalization diverged")
	}
}

func TestImportFinalizesFlatLayout(t *testing.T) {
	data, _ := clusterWithOutliers(200, 8, 13)
	f, err := Fit(data, Config{Trees: 25, SampleSize: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Import(f.Export())
	if err != nil {
		t.Fatal(err)
	}
	if back.flatRoots == nil {
		t.Fatal("Import did not finalize the flat layout")
	}
	r, _ := data.Dims()
	for i := 0; i < r; i++ {
		x := data.RawRow(i)
		if f.Score(x) != back.Score(x) {
			t.Fatalf("row %d: imported forest diverged", i)
		}
	}
}
