package drift

import (
	"testing"

	"polygraph/internal/browser"
	"polygraph/internal/core"
	"polygraph/internal/dataset"
	"polygraph/internal/fingerprint"
	"polygraph/internal/ua"
)

// fixture trains a model on training-window traffic and returns it with
// its extractor.
func fixture(t testing.TB) (*core.Model, *fingerprint.Extractor) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.Sessions = 30000
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := core.DefaultTrainConfig()
	tc.Reference = core.ExtractorReference{Extractor: d.Extractor, OS: ua.Windows10}
	m, _, err := core.Train(d.Samples(), tc)
	if err != nil {
		t.Fatal(err)
	}
	return m, d.Extractor
}

// vectorsFor synthesizes n live sessions of a release.
func vectorsFor(ext *fingerprint.Extractor, r ua.Release, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = ext.Extract(browser.Profile{Release: r, OS: ua.Windows10})
	}
	return out
}

func TestEvaluateErrors(t *testing.T) {
	d := &Detector{}
	if _, err := d.Evaluate(ua.Release{Vendor: ua.Chrome, Version: 115}, [][]float64{{1}}); err == nil {
		t.Fatal("nil model accepted")
	}
	m, _ := fixture(t)
	d = &Detector{Model: m}
	if _, err := d.Evaluate(ua.Release{Vendor: ua.Chrome, Version: 115}, nil); err == nil {
		t.Fatal("no sessions accepted")
	}
}

func TestStableReleaseNoRetrain(t *testing.T) {
	m, ext := fixture(t)
	d := &Detector{Model: m}
	// Chrome 115 shares the blink-current era with Chrome 114: same
	// cluster, high accuracy, no drift.
	ev, err := d.Evaluate(ua.Release{Vendor: ua.Chrome, Version: 115},
		vectorsFor(ext, ua.Release{Vendor: ua.Chrome, Version: 115}, 200))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Retrain {
		t.Fatalf("Chrome 115 signaled retrain: %s", ev.Reason)
	}
	if ev.ClosestKnown != (ua.Release{Vendor: ua.Chrome, Version: 114}) {
		t.Fatalf("closest known = %v", ev.ClosestKnown)
	}
	if ev.Cluster != m.UACluster[ua.Release{Vendor: ua.Chrome, Version: 114}] {
		t.Fatal("cluster differs from Chrome 114's")
	}
	if ev.Accuracy < 0.98 {
		t.Fatalf("accuracy %v", ev.Accuracy)
	}
}

func TestFirefox119ClusterChangeTriggersRetrain(t *testing.T) {
	m, ext := fixture(t)
	d := &Detector{Model: m}
	ev, err := d.Evaluate(ua.Release{Vendor: ua.Firefox, Version: 119},
		vectorsFor(ext, ua.Release{Vendor: ua.Firefox, Version: 119}, 200))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Retrain {
		t.Fatal("Firefox 119 Element rework did not signal retrain")
	}
	if ev.Cluster == m.UACluster[ua.Release{Vendor: ua.Firefox, Version: 114}] {
		t.Fatal("Firefox 119 still in the Firefox modern cluster")
	}
}

func TestAccuracyDropTriggersRetrain(t *testing.T) {
	m, ext := fixture(t)
	d := &Detector{Model: m}
	rel := ua.Release{Vendor: ua.Chrome, Version: 119}
	// 95% current sessions + 5% field-trial holdbacks still serving the
	// previous-era surface: predominant cluster unchanged but accuracy
	// below threshold.
	vectors := vectorsFor(ext, rel, 95)
	holdback := ua.Release{Vendor: ua.Chrome, Version: 113}
	vectors = append(vectors, vectorsFor(ext, holdback, 5)...)
	ev, err := d.Evaluate(rel, vectors)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy >= 0.98 {
		t.Fatalf("accuracy %v not degraded by holdback sessions", ev.Accuracy)
	}
	if !ev.Retrain {
		t.Fatalf("accuracy %v below threshold but no retrain", ev.Accuracy)
	}
}

func TestUnknownVendorLineSignalsRetrain(t *testing.T) {
	m, ext := fixture(t)
	// Remove every Firefox entry to simulate a model trained before the
	// vendor existed in traffic.
	for rel := range m.UACluster {
		if rel.Vendor == ua.Firefox {
			delete(m.UACluster, rel)
		}
	}
	d := &Detector{Model: m}
	ev, err := d.Evaluate(ua.Release{Vendor: ua.Firefox, Version: 115},
		vectorsFor(ext, ua.Release{Vendor: ua.Firefox, Version: 115}, 50))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Retrain {
		t.Fatal("unknown vendor line did not signal retrain")
	}
}

func TestCalendar2023Shape(t *testing.T) {
	cal := Calendar2023()
	if len(cal) != 5 {
		t.Fatalf("calendar has %d entries", len(cal))
	}
	labels := []string{"07/25", "08/25", "09/25", "10/23", "10/31"}
	for i, entry := range cal {
		if entry.Label != labels[i] {
			t.Fatalf("entry %d label %s", i, entry.Label)
		}
		if len(entry.Releases) != 3 {
			t.Fatalf("entry %d has %d releases", i, len(entry.Releases))
		}
		if i > 0 && entry.Day <= cal[i-1].Day {
			t.Fatal("calendar days not increasing")
		}
	}
}

// memSource implements SessionSource over a fixed map.
type memSource map[ua.Release][][]float64

func (m memSource) VectorsFor(r ua.Release, _ int) [][]float64 { return m[r] }

func TestRunCalendarReproducesTable6Shape(t *testing.T) {
	m, ext := fixture(t)
	d := &Detector{Model: m}
	src := memSource{}
	for _, entry := range Calendar2023() {
		for _, rel := range entry.Releases {
			n := 100
			vecs := vectorsFor(ext, rel, n)
			if rel == (ua.Release{Vendor: ua.Chrome, Version: 119}) {
				// Field-trial holdback minority (§7.3).
				vecs = append(vecs,
					vectorsFor(ext, ua.Release{Vendor: ua.Chrome, Version: 113}, 3)...)
			}
			src[rel] = vecs
		}
	}
	rep, err := d.RunCalendar(Calendar2023(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Evaluations) != 15 {
		t.Fatalf("%d evaluations, want 15", len(rep.Evaluations))
	}
	// Releases 115-118 stay stable; the retrain signal arrives in late
	// October with the 119 train (paper: triggered in October).
	for _, ev := range rep.Evaluations {
		stable := ev.Release.Version <= 118
		if stable && ev.Retrain {
			t.Fatalf("%s %s signaled retrain early: %s", ev.Date, ev.Release, ev.Reason)
		}
	}
	if !rep.NeedRetrain() {
		t.Fatal("calendar did not signal retrain at all")
	}
	if rep.RetrainDate != "10/31" {
		t.Fatalf("retrain signaled at %s, want 10/31", rep.RetrainDate)
	}
}

func TestRunCalendarSkipsMissingReleases(t *testing.T) {
	m, ext := fixture(t)
	d := &Detector{Model: m}
	src := memSource{
		{Vendor: ua.Chrome, Version: 115}: vectorsFor(ext, ua.Release{Vendor: ua.Chrome, Version: 115}, 10),
	}
	rep, err := d.RunCalendar(Calendar2023(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Evaluations) != 1 {
		t.Fatalf("%d evaluations, want 1", len(rep.Evaluations))
	}
}
