package drift

import (
	"fmt"
	"math"
	"sort"
)

// Feature-level drift monitoring via the Population Stability Index.
// §6.6 describes the module as one that "actively identifies shifts in
// data patterns or browser behavior": the cluster-based check catches
// behaviour shifts of *new releases*; the PSI monitor catches
// distribution shifts of *individual features* across the whole traffic
// (e.g. a config option going mainstream, an extension wave), which can
// degrade the model before any single release misbehaves.

// PSI thresholds conventional in production model monitoring.
const (
	// PSIWatch marks a feature worth watching (0.1–0.25).
	PSIWatch = 0.10
	// PSIAlert marks a materially shifted feature (> 0.25).
	PSIAlert = 0.25
)

// PSIResult reports one feature's stability.
type PSIResult struct {
	Feature string
	PSI     float64
	// Status is "stable", "watch", or "alert".
	Status string
}

// PSI computes the Population Stability Index between a baseline and a
// current sample of one feature. Bins are deciles of the baseline
// (collapsing ties, so low-cardinality integer features get the bins
// they support); both distributions are Laplace-smoothed so empty bins
// do not produce infinities.
func PSI(baseline, current []float64) (float64, error) {
	if len(baseline) < 10 || len(current) < 10 {
		return 0, fmt.Errorf("drift: PSI needs ≥10 samples per side, have %d/%d", len(baseline), len(current))
	}
	edges := decileEdges(baseline)
	bBase := binCounts(baseline, edges)
	bCur := binCounts(current, edges)
	nBins := len(bBase)

	psi := 0.0
	nB := float64(len(baseline) + nBins) // +1 smoothing mass
	nC := float64(len(current) + nBins)
	for i := 0; i < nBins; i++ {
		pb := (float64(bBase[i]) + 1) / nB
		pc := (float64(bCur[i]) + 1) / nC
		psi += (pc - pb) * math.Log(pc/pb)
	}
	return psi, nil
}

// decileEdges returns the distinct interior decile boundaries of xs,
// preceded by an edge just below the baseline minimum. The leading edge
// gives "current" mass below every baseline value its own bin, so a
// downward shift of a constant or low-cardinality feature (our property
// counts are integers) is visible; for continuous data it merely adds a
// near-empty lowest bin.
func decileEdges(xs []float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	edges := []float64{sorted[0] - 0.5}
	for d := 1; d < 10; d++ {
		q := sorted[len(sorted)*d/10]
		if q > edges[len(edges)-1] {
			edges = append(edges, q)
		}
	}
	return edges
}

// binCounts counts xs per bin defined by edges (len(edges)+1 bins).
func binCounts(xs []float64, edges []float64) []int {
	counts := make([]int, len(edges)+1)
	for _, x := range xs {
		// Bins are (-inf, e0], (e0, e1], ..., (eLast, inf):
		// SearchFloat64s returns the first edge ≥ x, which is exactly
		// the bin index (edge values fall in the lower bin).
		counts[sort.SearchFloat64s(edges, x)]++
	}
	return counts
}

// FeaturePSI computes the PSI of every column between a baseline matrix
// view and a current one, given as per-row vectors plus feature names.
// Results are sorted by PSI descending.
func FeaturePSI(names []string, baseline, current [][]float64) ([]PSIResult, error) {
	if len(baseline) == 0 || len(current) == 0 {
		return nil, fmt.Errorf("drift: empty PSI input")
	}
	dim := len(names)
	for i, r := range baseline {
		if len(r) != dim {
			return nil, fmt.Errorf("drift: baseline row %d has %d features, want %d", i, len(r), dim)
		}
	}
	for i, r := range current {
		if len(r) != dim {
			return nil, fmt.Errorf("drift: current row %d has %d features, want %d", i, len(r), dim)
		}
	}
	out := make([]PSIResult, 0, dim)
	bCol := make([]float64, len(baseline))
	cCol := make([]float64, len(current))
	for j := 0; j < dim; j++ {
		for i, r := range baseline {
			bCol[i] = r[j]
		}
		for i, r := range current {
			cCol[i] = r[j]
		}
		psi, err := PSI(bCol, cCol)
		if err != nil {
			return nil, fmt.Errorf("drift: feature %s: %w", names[j], err)
		}
		status := "stable"
		switch {
		case psi > PSIAlert:
			status = "alert"
		case psi > PSIWatch:
			status = "watch"
		}
		out = append(out, PSIResult{Feature: names[j], PSI: psi, Status: status})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PSI != out[j].PSI {
			return out[i].PSI > out[j].PSI
		}
		return out[i].Feature < out[j].Feature
	})
	return out, nil
}

// AnyAlert reports whether any feature crossed the alert threshold.
func AnyAlert(results []PSIResult) bool {
	for _, r := range results {
		if r.Status == "alert" {
			return true
		}
	}
	return false
}
