package drift

import (
	"testing"

	"polygraph/internal/browser"
	"polygraph/internal/dataset"
	"polygraph/internal/fingerprint"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

func normals(n int, mean, sd float64, seed uint64) []float64 {
	g := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + sd*g.NormFloat64()
	}
	return out
}

func TestPSIIdenticalDistributions(t *testing.T) {
	a := normals(5000, 10, 2, 1)
	b := normals(5000, 10, 2, 2)
	psi, err := PSI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if psi > 0.02 {
		t.Fatalf("PSI of same distribution = %v", psi)
	}
}

func TestPSIShiftedDistribution(t *testing.T) {
	a := normals(5000, 10, 2, 3)
	b := normals(5000, 14, 2, 4) // 2σ mean shift
	psi, err := PSI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if psi < PSIAlert {
		t.Fatalf("PSI of 2σ shift = %v, want > %v", psi, PSIAlert)
	}
}

func TestPSINonNegativeAndSymmetricOrder(t *testing.T) {
	a := normals(2000, 5, 1, 5)
	b := normals(2000, 6, 1.5, 6)
	ab, err := PSI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := PSI(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if ab < 0 || ba < 0 {
		t.Fatalf("negative PSI: %v %v", ab, ba)
	}
	// PSI is not exactly symmetric (bins follow the baseline), but the
	// two directions must agree on the order of magnitude.
	if ab > 4*ba || ba > 4*ab {
		t.Fatalf("directions wildly inconsistent: %v vs %v", ab, ba)
	}
}

func TestPSILowCardinalityFeature(t *testing.T) {
	// Binary feature: flipping prevalence from 10% to 60% must alert.
	mk := func(n int, p float64, seed uint64) []float64 {
		g := rng.New(seed)
		out := make([]float64, n)
		for i := range out {
			if g.Bool(p) {
				out[i] = 1
			}
		}
		return out
	}
	stable, err := PSI(mk(3000, 0.1, 7), mk(3000, 0.11, 8))
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := PSI(mk(3000, 0.1, 9), mk(3000, 0.6, 10))
	if err != nil {
		t.Fatal(err)
	}
	if stable > PSIWatch {
		t.Fatalf("stable binary PSI = %v", stable)
	}
	if shifted < PSIAlert {
		t.Fatalf("shifted binary PSI = %v", shifted)
	}
}

func TestPSIErrors(t *testing.T) {
	if _, err := PSI([]float64{1}, normals(100, 0, 1, 1)); err == nil {
		t.Fatal("tiny baseline accepted")
	}
	if _, err := PSI(normals(100, 0, 1, 1), []float64{1}); err == nil {
		t.Fatal("tiny current accepted")
	}
}

func TestFeaturePSIOnOracleDrift(t *testing.T) {
	// Baseline: Firefox 110 sessions. Current: Firefox 119 (Element
	// rework). The Element feature must top the PSI ranking.
	oracle := browser.NewOracle()
	ext := fingerprint.NewExtractor(oracle, fingerprint.Table8())
	mk := func(v, n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = ext.Extract(browser.Profile{Release: ua.Release{Vendor: ua.Firefox, Version: v}, OS: ua.Windows10})
		}
		return out
	}
	names := fingerprint.Names(fingerprint.Table8())
	results, err := FeaturePSI(names, mk(118, 200), mk(119, 200))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 28 {
		t.Fatalf("%d results", len(results))
	}
	if !AnyAlert(results) {
		t.Fatal("Firefox 119 rework raised no PSI alert")
	}
	// The shifted Element-family features lead the ranking.
	if results[0].Status != "alert" {
		t.Fatalf("top feature status %s", results[0].Status)
	}
	// Stable comparison: two independent draws of the same traffic
	// distribution (the monitor's production input), which must not
	// alert.
	window := func(seed uint64) [][]float64 {
		cfg := dataset.DefaultConfig()
		cfg.Sessions = 4000
		cfg.Seed = seed
		d, err := dataset.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]float64, len(d.Sessions))
		for i, s := range d.Sessions {
			out[i] = s.Vector
		}
		return out
	}
	stable, err := FeaturePSI(names, window(1), window(2))
	if err != nil {
		t.Fatal(err)
	}
	if AnyAlert(stable) {
		for _, r := range stable[:3] {
			t.Logf("%s: %.3f (%s)", r.Feature, r.PSI, r.Status)
		}
		t.Fatal("stable traffic windows raised a PSI alert")
	}
}

func TestFeaturePSIValidation(t *testing.T) {
	if _, err := FeaturePSI([]string{"a"}, nil, [][]float64{{1}}); err == nil {
		t.Fatal("empty baseline accepted")
	}
	if _, err := FeaturePSI([]string{"a"}, [][]float64{{1, 2}}, [][]float64{{1}}); err == nil {
		t.Fatal("ragged baseline accepted")
	}
	base := make([][]float64, 20)
	cur := make([][]float64, 20)
	for i := range base {
		base[i] = []float64{float64(i)}
		cur[i] = []float64{float64(i), 9}
	}
	if _, err := FeaturePSI([]string{"a"}, base, cur); err == nil {
		t.Fatal("ragged current accepted")
	}
}
