// Package drift implements Browser Polygraph's drift-detection module
// (paper §6.6, evaluated in §7.3 / Table 6): on designated dates shortly
// after each browser release train, it clusters the new release's live
// sessions with the deployed model and decides whether the model is
// still current. A retrain is signaled when the release's predominant
// cluster differs from its closest predecessor's cluster in the deployed
// table, or when the fraction of its sessions landing in the predominant
// cluster drops below the accuracy threshold (98% in the paper).
package drift

import (
	"fmt"
	"sort"

	"polygraph/internal/core"
	"polygraph/internal/ua"
)

// DefaultAccuracyThreshold is the paper's retraining trigger level.
const DefaultAccuracyThreshold = 0.98

// Detector evaluates new releases against a deployed model.
type Detector struct {
	Model *core.Model
	// Threshold below which clustering accuracy signals drift;
	// 0 means DefaultAccuracyThreshold.
	Threshold float64
}

// Evaluation is one Table 6 row.
type Evaluation struct {
	Release ua.Release
	// Date labels the designated evaluation date ("07/25").
	Date string
	// Cluster is the predominant cluster of the release's sessions.
	Cluster int
	// Accuracy is the fraction of sessions in the predominant cluster.
	Accuracy float64
	// Sessions is the number of live sessions evaluated.
	Sessions int
	// ExpectedCluster is the cluster of the closest release the model
	// was trained on (same vendor, nearest version).
	ExpectedCluster int
	// ClosestKnown is that reference release.
	ClosestKnown ua.Release
	// Retrain reports whether this evaluation signals retraining.
	Retrain bool
	// Reason explains a true Retrain.
	Reason string
}

// Evaluate runs the drift check for one release over its live session
// vectors. It needs at least one session.
func (d *Detector) Evaluate(release ua.Release, vectors [][]float64) (Evaluation, error) {
	if d.Model == nil {
		return Evaluation{}, fmt.Errorf("drift: nil model")
	}
	if len(vectors) == 0 {
		return Evaluation{}, fmt.Errorf("drift: no sessions for %s", release)
	}
	threshold := d.Threshold
	if threshold == 0 {
		threshold = DefaultAccuracyThreshold
	}

	counts := map[int]int{}
	for _, v := range vectors {
		c, err := d.Model.PredictCluster(v)
		if err != nil {
			return Evaluation{}, err
		}
		counts[c]++
	}
	clusters := make([]int, 0, len(counts))
	for c := range counts {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	best, bestN := 0, -1
	for _, c := range clusters {
		if counts[c] > bestN {
			bestN = counts[c]
			best = c
		}
	}

	ev := Evaluation{
		Release:  release,
		Cluster:  best,
		Accuracy: float64(bestN) / float64(len(vectors)),
		Sessions: len(vectors),
	}

	closest, expected, ok := d.closestKnownCluster(release)
	if !ok {
		ev.Retrain = true
		ev.Reason = "no same-vendor release in deployed cluster table"
		return ev, nil
	}
	ev.ClosestKnown = closest
	ev.ExpectedCluster = expected

	switch {
	case ev.Cluster != expected:
		ev.Retrain = true
		ev.Reason = fmt.Sprintf("cluster changed: %s sits in cluster %d, closest release %s in %d",
			release, ev.Cluster, closest, expected)
	case ev.Accuracy < threshold:
		ev.Retrain = true
		ev.Reason = fmt.Sprintf("accuracy %.2f%% below %.0f%% threshold",
			100*ev.Accuracy, 100*threshold)
	}
	return ev, nil
}

// closestKnownCluster finds the same-vendor release nearest in version
// among those the model was trained on, and its cluster.
func (d *Detector) closestKnownCluster(release ua.Release) (ua.Release, int, bool) {
	bestDiff := 1 << 30
	var best ua.Release
	found := false
	for rel := range d.Model.UACluster {
		if rel.Vendor != release.Vendor {
			continue
		}
		diff := rel.Version - release.Version
		if diff < 0 {
			diff = -diff
		}
		// Deterministic tie-break: prefer the older release (the
		// "closest prior release" reading of §6.6).
		if diff < bestDiff || (diff == bestDiff && rel.Version < best.Version) {
			bestDiff = diff
			best = rel
			found = true
		}
	}
	if !found {
		return ua.Release{}, 0, false
	}
	return best, d.Model.UACluster[best], true
}

// Schedule is the paper's designated evaluation calendar: a few days
// after each Firefox release, with the matching Chrome/Edge train one to
// two weeks earlier (§7.3). Days count from 2023-03-01.
type ScheduleEntry struct {
	Day      int
	Label    string // Table 6 date column
	Releases []ua.Release
}

// Calendar2023 returns the late-July–October 2023 schedule behind
// Table 6.
func Calendar2023() []ScheduleEntry {
	mk := func(v int) []ua.Release {
		return []ua.Release{
			{Vendor: ua.Chrome, Version: v},
			{Vendor: ua.Firefox, Version: v},
			{Vendor: ua.Edge, Version: v},
		}
	}
	return []ScheduleEntry{
		{Day: 146, Label: "07/25", Releases: mk(115)},
		{Day: 177, Label: "08/25", Releases: mk(116)},
		{Day: 208, Label: "09/25", Releases: mk(117)},
		{Day: 236, Label: "10/23", Releases: mk(118)},
		{Day: 244, Label: "10/31", Releases: mk(119)},
	}
}

// Report aggregates a full calendar evaluation.
type Report struct {
	Evaluations []Evaluation
	// RetrainDate is the label of the first entry that signaled
	// retraining ("" if none did).
	RetrainDate string
}

// NeedRetrain reports whether any evaluation signaled drift.
func (r Report) NeedRetrain() bool { return r.RetrainDate != "" }

// SessionSource supplies the live vectors for a release observed up to a
// given day — the production system reads these from the collection
// tier; experiments read them from the generated drift dataset.
type SessionSource interface {
	VectorsFor(release ua.Release, upToDay int) [][]float64
}

// RunCalendar executes the scheduled evaluations in order, skipping
// releases with no observed sessions yet (a release can lag uptake), and
// stops adding entries after the first retrain signal only in the sense
// of recording it — all entries are still evaluated, matching Table 6
// which reports the full window.
func (d *Detector) RunCalendar(schedule []ScheduleEntry, src SessionSource) (Report, error) {
	var rep Report
	for _, entry := range schedule {
		for _, rel := range entry.Releases {
			vectors := src.VectorsFor(rel, entry.Day)
			if len(vectors) == 0 {
				continue
			}
			ev, err := d.Evaluate(rel, vectors)
			if err != nil {
				return Report{}, err
			}
			ev.Date = entry.Label
			rep.Evaluations = append(rep.Evaluations, ev)
			if ev.Retrain && rep.RetrainDate == "" {
				rep.RetrainDate = entry.Label
			}
		}
	}
	return rep, nil
}
