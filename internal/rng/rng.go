// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the reproduction.
//
// Every dataset, model initialization, and simulation in this repository
// must be bit-reproducible across Go releases and platforms. The standard
// library's math/rand does not guarantee a stable stream across Go
// versions, so we ship our own PCG-XSL-RR 128/64 generator (O'Neill, 2014)
// with a splitmix64 seeding routine. The generator also implements
// rand.Source (Int63) so it can back helpers that expect one.
package rng

import "math/bits"

// PCG is a PCG-XSL-RR 128/64 pseudo-random generator. The zero value is
// not usable; construct with New. PCG is not safe for concurrent use;
// derive per-goroutine generators with Split.
type PCG struct {
	hi, lo uint64 // 128-bit state
}

const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
	incHi = 6364136223846793005
	incLo = 1442695040888963407
)

// New returns a generator seeded from seed via splitmix64, so nearby
// seeds still produce uncorrelated streams.
func New(seed uint64) *PCG {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	p := &PCG{hi: next(), lo: next() | 1}
	// Advance a few steps to decorrelate from the seeding constants.
	for i := 0; i < 4; i++ {
		p.Uint64()
	}
	return p
}

// NewString seeds a generator from an arbitrary label using FNV-1a. It is
// used to derive stable sub-streams for named entities ("Chrome", feature
// names, ...) without coordinating integer seed spaces.
func NewString(label string) *PCG {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return New(h)
}

// Split derives an independent generator from the current state and a
// label, leaving the receiver untouched. Two Splits with different labels
// yield uncorrelated streams.
func (p *PCG) Split(label string) *PCG {
	child := NewString(label)
	child.hi ^= p.hi
	child.lo ^= p.lo | 1
	for i := 0; i < 4; i++ {
		child.Uint64()
	}
	return child
}

// Uint64 returns the next 64 uniformly distributed bits.
func (p *PCG) Uint64() uint64 {
	// state = state*mul + inc (128-bit)
	carry, lo := bits.Mul64(p.lo, mulLo)
	hi := p.hi*mulLo + p.lo*mulHi + carry
	lo, c := bits.Add64(lo, incLo, 0)
	hi += incHi + c
	p.hi, p.lo = hi, lo
	// XSL-RR output function.
	return bits.RotateLeft64(hi^lo, -int(hi>>58))
}

// Int63 implements rand.Source.
func (p *PCG) Int63() int64 { return int64(p.Uint64() >> 1) }

// Seed implements rand.Source. It reseeds the generator deterministically.
func (p *PCG) Seed(seed int64) { *p = *New(uint64(seed)) }

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (p *PCG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	x := p.Uint64()
	hi, lo := bits.Mul64(x, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			x = p.Uint64()
			hi, lo = bits.Mul64(x, n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(p.Uint64n(uint64(n)))
}

// IntRange returns a uniform value in [lo, hi] inclusive. It panics if
// hi < lo.
func (p *PCG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + p.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability prob.
func (p *PCG) Bool(prob float64) bool { return p.Float64() < prob }

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method. The method consumes a variable number of uniforms but needs no
// cached state, keeping Split semantics simple.
func (p *PCG) NormFloat64() float64 {
	for {
		u := 2*p.Float64() - 1
		v := 2*p.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * sqrt(-2*ln(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (p *PCG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	p.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (p *PCG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples from a Zipf-like distribution over [0, n) with exponent s.
// Smaller indices are more likely. It uses inverse-CDF sampling over the
// precomputed weights, so it is O(n) per call; callers that need many
// samples should use NewZipf.
func (p *PCG) Zipf(n int, s float64) int {
	z := NewZipf(p, n, s)
	return z.Sample()
}

// Zipfian samples ranks with probability proportional to 1/(rank+1)^s.
type Zipfian struct {
	rng *PCG
	cdf []float64
}

// NewZipf precomputes the CDF for a Zipf distribution over [0, n) with
// exponent s > 0.
func NewZipf(rng *PCG, n int, s float64) *Zipfian {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipfian{rng: rng, cdf: cdf}
}

// Sample draws one rank from the distribution.
func (z *Zipfian) Sample() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
