package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestKnownStream(t *testing.T) {
	// Pin the first outputs so any accidental algorithm change is caught.
	p := New(0)
	got := []uint64{p.Uint64(), p.Uint64(), p.Uint64()}
	q := New(0)
	want := []uint64{q.Uint64(), q.Uint64(), q.Uint64()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stream not reproducible at %d", i)
		}
	}
}

func TestNewString(t *testing.T) {
	if NewString("Chrome").Uint64() == NewString("Firefox").Uint64() {
		t.Fatal("distinct labels produced identical first draw")
	}
	if NewString("Chrome").Uint64() != NewString("Chrome").Uint64() {
		t.Fatal("same label not deterministic")
	}
}

func TestSplitIndependence(t *testing.T) {
	p := New(7)
	a := p.Split("a")
	b := p.Split("b")
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams with distinct labels collided on first draw")
	}
	// Splitting must not advance the parent.
	p1 := New(7)
	_ = p1.Split("a")
	p2 := New(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split advanced parent state")
	}
}

func TestUint64nBounds(t *testing.T) {
	p := New(3)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		v := p.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntRange(t *testing.T) {
	p := New(9)
	for i := 0; i < 1000; i++ {
		v := p.IntRange(-5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	if got := p.IntRange(3, 3); got != 3 {
		t.Fatalf("degenerate range: got %d want 3", got)
	}
}

func TestIntRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(5, 4) did not panic")
		}
	}()
	New(1).IntRange(5, 4)
}

func TestFloat64Range(t *testing.T) {
	p := New(11)
	for i := 0; i < 10000; i++ {
		v := p.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	p := New(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	p := New(17)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := p.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestBoolProbability(t *testing.T) {
	p := New(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if p.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(23)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		perm := p.Perm(m)
		seen := make([]bool, m)
		for _, v := range perm {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	p := New(29)
	z := NewZipf(p, 100, 1.1)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Sample()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if counts[0] == 50000 {
		t.Fatal("zipf degenerate: all mass on rank 0")
	}
}

func TestZipfBounds(t *testing.T) {
	p := New(31)
	z := NewZipf(p, 7, 1.0)
	for i := 0; i < 10000; i++ {
		if v := z.Sample(); v < 0 || v >= 7 {
			t.Fatalf("zipf sample out of range: %d", v)
		}
	}
}

func TestNewZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(rng, 0, 1) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestSourceInterface(t *testing.T) {
	p := New(37)
	for i := 0; i < 100; i++ {
		if v := p.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative: %d", v)
		}
	}
	p.Seed(42)
	q := New(42)
	if p.Uint64() != q.Uint64() {
		t.Fatal("Seed did not reset deterministically")
	}
}

func BenchmarkUint64(b *testing.B) {
	p := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = p.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	p := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = p.NormFloat64()
	}
	_ = sink
}
