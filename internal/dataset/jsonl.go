package dataset

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"polygraph/internal/core"
	"polygraph/internal/fingerprint"
	"polygraph/internal/ua"
)

// The JSONL handoff format mirrors what FinOrg periodically delivered to
// the researchers (§6.2): one record per session holding ONLY the opaque
// session ID, the claimed user-agent string, the integer feature outputs,
// and — in the evaluation variant — the three risk tags. Ground-truth
// fraud labels exist only inside the generator and are never exported,
// exactly like production.

// Record is one exported session.
type Record struct {
	SessionID string  `json:"sid"`
	Day       int     `json:"day"`
	UserAgent string  `json:"ua"`
	Values    []int64 `json:"v"`
	// Tags are included only by WriteJSONL with tags=true (the paper's
	// evaluation feed; "used solely for evaluation purposes", §7.1).
	Tags *Tags `json:"tags,omitempty"`
}

// WriteJSONL exports sessions as JSON lines. withTags selects the
// evaluation variant.
func (d *Dataset) WriteJSONL(w io.Writer, withTags bool) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	enc := json.NewEncoder(bw)
	for i := range d.Sessions {
		s := &d.Sessions[i]
		rec := Record{
			SessionID: hex.EncodeToString(s.ID[:]),
			Day:       s.Day,
			UserAgent: s.UAString,
			Values:    fingerprint.VectorToValues(s.Vector),
		}
		if withTags {
			tags := s.Tags
			rec.Tags = &tags
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("dataset: encode session %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses an exported dataset back into training samples plus
// the raw records (for tag-based evaluation). dim guards the expected
// feature width; 0 accepts the first record's width.
func ReadJSONL(r io.Reader, dim int) ([]core.Sample, []Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	var samples []core.Sample
	var records []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
		}
		if dim == 0 {
			dim = len(rec.Values)
		}
		if len(rec.Values) != dim {
			return nil, nil, fmt.Errorf("dataset: line %d has %d values, want %d", lineNo, len(rec.Values), dim)
		}
		rel, err := ua.Parse(rec.UserAgent)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
		}
		samples = append(samples, core.Sample{
			Vector: fingerprint.ValuesToVector(rec.Values),
			UA:     rel,
		})
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("dataset: scan: %w", err)
	}
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("dataset: no records")
	}
	return samples, records, nil
}
