package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"polygraph/internal/core"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

func smallConfig(n int) Config {
	cfg := DefaultConfig()
	cfg.Sessions = n
	return cfg
}

func TestGenerateValidation(t *testing.T) {
	cfg := smallConfig(0)
	if _, err := Generate(cfg); err == nil {
		t.Fatal("no error for zero sessions")
	}
	cfg = smallConfig(10)
	cfg.Window = Window{StartDay: 5, EndDay: 5}
	if _, err := Generate(cfg); err == nil {
		t.Fatal("no error for empty window")
	}
	cfg = smallConfig(10)
	cfg.MaxVersion = 10
	if _, err := Generate(cfg); err == nil {
		t.Fatal("no error for tiny MaxVersion")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig(2000)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatal("session counts differ")
	}
	for i := range a.Sessions {
		sa, sb := a.Sessions[i], b.Sessions[i]
		if sa.Claimed != sb.Claimed || sa.Fraud != sb.Fraud || sa.ID != sb.ID {
			t.Fatalf("session %d differs between runs", i)
		}
		for j := range sa.Vector {
			if sa.Vector[j] != sb.Vector[j] {
				t.Fatalf("session %d vector differs", i)
			}
		}
	}
}

func TestGenerateSeedSensitive(t *testing.T) {
	a, _ := Generate(smallConfig(500))
	cfg := smallConfig(500)
	cfg.Seed = 999
	b, _ := Generate(cfg)
	same := 0
	for i := range a.Sessions {
		if a.Sessions[i].Claimed == b.Sessions[i].Claimed {
			same++
		}
	}
	if same == len(a.Sessions) {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestSessionsWellFormed(t *testing.T) {
	d, err := Generate(smallConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	var zeroID [16]byte
	for i, s := range d.Sessions {
		if !s.Claimed.Valid() {
			t.Fatalf("session %d claims invalid release %v", i, s.Claimed)
		}
		if len(s.Vector) != 28 {
			t.Fatalf("session %d vector width %d", i, len(s.Vector))
		}
		if s.ID == zeroID {
			t.Fatalf("session %d has zero ID", i)
		}
		if s.Day < d.Config.Window.StartDay || s.Day >= d.Config.Window.EndDay {
			t.Fatalf("session %d day %d outside window", i, s.Day)
		}
		if parsed, err := ua.Parse(s.UAString); err != nil || parsed != s.Claimed {
			t.Fatalf("session %d UA string %q does not parse to claim %v", i, s.UAString, s.Claimed)
		}
		if s.Fraud && s.FraudTool == "" {
			t.Fatalf("session %d fraud without tool", i)
		}
		if !s.Fraud && s.FraudTool != "" {
			t.Fatalf("session %d legit with tool", i)
		}
		// Releases must have shipped before the session day.
		if !s.Fraud && releaseDay(s.Claimed) > s.Day {
			t.Fatalf("session %d uses %v before its release day", i, s.Claimed)
		}
	}
}

func TestFraudRateApproximate(t *testing.T) {
	d, err := Generate(smallConfig(50000))
	if err != nil {
		t.Fatal(err)
	}
	nFraud := 0
	for _, s := range d.Sessions {
		if s.Fraud {
			nFraud++
		}
	}
	rate := float64(nFraud) / float64(len(d.Sessions))
	if math.Abs(rate-d.Config.FraudRate) > 0.002 {
		t.Fatalf("fraud rate %v, configured %v", rate, d.Config.FraudRate)
	}
}

func TestTagBaseRates(t *testing.T) {
	d, err := Generate(smallConfig(50000))
	if err != nil {
		t.Fatal(err)
	}
	var ip, cookie, ato, n float64
	for _, s := range d.Sessions {
		if s.Fraud {
			continue
		}
		n++
		if s.Tags.UntrustedIP {
			ip++
		}
		if s.Tags.UntrustedCookie {
			cookie++
		}
		if s.Tags.ATO {
			ato++
		}
	}
	if math.Abs(ip/n-0.51) > 0.01 {
		t.Fatalf("legit IP rate %v", ip/n)
	}
	if math.Abs(cookie/n-0.49) > 0.01 {
		t.Fatalf("legit cookie rate %v", cookie/n)
	}
	if math.Abs(ato/n-0.0042) > 0.002 {
		t.Fatalf("legit ATO rate %v", ato/n)
	}
}

func TestFraudTagsElevated(t *testing.T) {
	cfg := smallConfig(60000)
	cfg.FraudRate = 0.05 // oversample fraud for rate estimation
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ip, ato, n float64
	for _, s := range d.Sessions {
		if !s.Fraud {
			continue
		}
		n++
		if s.Tags.UntrustedIP {
			ip++
		}
		if s.Tags.ATO {
			ato++
		}
	}
	if n == 0 {
		t.Fatal("no fraud sessions")
	}
	if ip/n < 0.85 {
		t.Fatalf("fraud IP rate %v, want ≳0.93", ip/n)
	}
	if ato/n < 0.01 || ato/n > 0.12 {
		t.Fatalf("fraud ATO rate %v outside plausible band", ato/n)
	}
}

func TestDistinctReleasesNearPaper(t *testing.T) {
	d, err := Generate(smallConfig(205000))
	if err != nil {
		t.Fatal(err)
	}
	n := d.DistinctReleases()
	// The paper observed 113; the generator should land in the same
	// regime (well below the 164-release universe, well above the
	// handful of current versions).
	if n < 100 || n > 170 {
		t.Fatalf("distinct releases = %d", n)
	}
}

func TestModernVersionsDominate(t *testing.T) {
	d, err := Generate(smallConfig(30000))
	if err != nil {
		t.Fatal(err)
	}
	old := 0
	for _, s := range d.Sessions {
		r := s.Claimed
		isOld := false
		switch r.Vendor {
		case ua.Chrome, ua.Edge:
			isOld = r.Version < 90 // includes legacy Edge
		case ua.Firefox:
			isOld = r.Version < 92
		}
		if isOld {
			old++
		}
	}
	frac := float64(old) / float64(len(d.Sessions))
	// Paper: old versions < 2% of traffic... our ancient-fleet tails
	// push slightly higher; the regime (a few percent) is what matters.
	if frac > 0.08 {
		t.Fatalf("old-version traffic = %.1f%%", frac*100)
	}
	if frac == 0 {
		t.Fatal("no old-version traffic at all")
	}
}

func TestSamplesMatchSessions(t *testing.T) {
	d, err := Generate(smallConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	samples := d.Samples()
	if len(samples) != len(d.Sessions) {
		t.Fatal("sample count mismatch")
	}
	for i := range samples {
		if samples[i].UA != d.Sessions[i].Claimed {
			t.Fatal("sample UA mismatch")
		}
	}
}

func TestSessionsForRelease(t *testing.T) {
	d, err := Generate(smallConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	target := ua.Release{Vendor: ua.Chrome, Version: 112}
	got := d.SessionsForRelease(target)
	if len(got) == 0 {
		t.Fatal("no Chrome 112 sessions in training-window traffic")
	}
	for _, s := range got {
		if s.Claimed != target {
			t.Fatal("wrong release returned")
		}
	}
}

func TestDriftWindowContainsNewReleases(t *testing.T) {
	cfg := smallConfig(30000)
	cfg.Window = DriftWindow
	cfg.MaxVersion = 119
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen115, seen119 := false, false
	for _, s := range d.Sessions {
		if s.Claimed == (ua.Release{Vendor: ua.Chrome, Version: 115}) {
			seen115 = true
		}
		if s.Claimed == (ua.Release{Vendor: ua.Chrome, Version: 119}) {
			seen119 = true
		}
	}
	if !seen115 {
		t.Fatal("no Chrome 115 sessions in drift window")
	}
	if !seen119 {
		t.Fatal("no Chrome 119 sessions in drift window")
	}
}

func TestReleaseDayOrdering(t *testing.T) {
	// Newer versions ship later, for every vendor lineage.
	for v := 60; v < 125; v++ {
		if releaseDay(ua.Release{Vendor: ua.Chrome, Version: v}) >=
			releaseDay(ua.Release{Vendor: ua.Chrome, Version: v + 1}) {
			t.Fatalf("Chrome %d ships after %d", v, v+1)
		}
	}
	for v := 46; v < 125; v++ {
		if releaseDay(ua.Release{Vendor: ua.Firefox, Version: v}) >=
			releaseDay(ua.Release{Vendor: ua.Firefox, Version: v + 1}) {
			t.Fatalf("Firefox %d ships after %d", v, v+1)
		}
	}
	// Calendar anchors: Chrome 111 on day 6, Firefox 111 on day 13.
	if releaseDay(ua.Release{Vendor: ua.Chrome, Version: 111}) != 6 {
		t.Fatal("Chrome 111 anchor wrong")
	}
	if releaseDay(ua.Release{Vendor: ua.Firefox, Version: 111}) != 13 {
		t.Fatal("Firefox 111 anchor wrong")
	}
}

func TestUsageWeightProperties(t *testing.T) {
	// Unreleased versions carry no weight.
	if usageWeight(ua.Release{Vendor: ua.Chrome, Version: 114}, 0) != 0 {
		t.Fatal("Chrome 114 has weight on day 0 (ships day 90)")
	}
	// A current version outweighs an ancient one.
	cur := usageWeight(ua.Release{Vendor: ua.Chrome, Version: 111}, 40)
	anc := usageWeight(ua.Release{Vendor: ua.Chrome, Version: 60}, 40)
	if cur <= anc*10 {
		t.Fatalf("current %v not ≫ ancient %v", cur, anc)
	}
	// Ancient versions retain a nonzero tail.
	if anc <= 0 {
		t.Fatal("ancient release has zero weight")
	}
}

func TestUASamplerRespectsAvailability(t *testing.T) {
	s := newUASampler(Window{StartDay: 0, EndDay: 30}, 114)
	gen := rng.New(5)
	for i := 0; i < 5000; i++ {
		r := s.Sample(10, gen)
		if releaseDay(r) > 10 {
			t.Fatalf("sampled unreleased %v on day 10", r)
		}
	}
	// Out-of-range days clamp rather than panic.
	_ = s.Sample(-5, gen)
	_ = s.Sample(999, gen)
}

func BenchmarkGenerate10k(b *testing.B) {
	cfg := smallConfig(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStratifiedSample(t *testing.T) {
	d, err := Generate(smallConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	full := d.Samples()
	sampled := StratifiedSample(full, 100, 1)
	if len(sampled) >= len(full) {
		t.Fatal("sampling did not shrink the corpus")
	}
	// Per-UA caps hold, and rare UAs keep everything.
	fullCounts := map[ua.Release]int{}
	for _, s := range full {
		fullCounts[s.UA]++
	}
	sampleCounts := map[ua.Release]int{}
	for _, s := range sampled {
		sampleCounts[s.UA]++
	}
	for rel, n := range sampleCounts {
		if n > 100 {
			t.Fatalf("%s kept %d rows, cap 100", rel, n)
		}
	}
	for rel, n := range fullCounts {
		if n <= 100 && sampleCounts[rel] != n {
			t.Fatalf("rare %s lost rows: %d of %d", rel, sampleCounts[rel], n)
		}
		if n > 100 && sampleCounts[rel] != 100 {
			t.Fatalf("popular %s kept %d rows, want exactly 100", rel, sampleCounts[rel])
		}
	}
	// Deterministic.
	again := StratifiedSample(full, 100, 1)
	if len(again) != len(sampled) {
		t.Fatal("stratified sample not deterministic")
	}
	for i := range again {
		if again[i].UA != sampled[i].UA {
			t.Fatal("stratified sample order not deterministic")
		}
	}
	// Degenerate inputs.
	if StratifiedSample(full, 0, 1) != nil {
		t.Fatal("cap 0 should return nil")
	}
	if StratifiedSample(nil, 10, 1) != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestJSONLRoundtrip(t *testing.T) {
	d, err := Generate(smallConfig(3000))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf, true); err != nil {
		t.Fatal(err)
	}
	samples, records, err := ReadJSONL(&buf, 28)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != len(d.Sessions) || len(records) != len(d.Sessions) {
		t.Fatalf("roundtrip lost rows: %d vs %d", len(samples), len(d.Sessions))
	}
	for i, s := range d.Sessions {
		if samples[i].UA != s.Claimed {
			t.Fatalf("row %d UA mismatch", i)
		}
		for j := range s.Vector {
			if samples[i].Vector[j] != s.Vector[j] {
				t.Fatalf("row %d value mismatch", i)
			}
		}
		if records[i].Tags == nil || *records[i].Tags != s.Tags {
			t.Fatalf("row %d tags mismatch", i)
		}
	}
}

func TestJSONLWithoutTags(t *testing.T) {
	d, err := Generate(smallConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "tags") {
		t.Fatal("collection variant leaked tags")
	}
	// Ground truth never leaves the generator.
	for _, banned := range []string{"fraud", "Fraud", "modifier", "actual"} {
		if strings.Contains(buf.String(), banned) {
			t.Fatalf("export leaked ground-truth field %q", banned)
		}
	}
	if _, _, err := ReadJSONL(&buf, 28); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONLRejectsJunk(t *testing.T) {
	cases := []string{
		"",
		"not json\n",
		`{"sid":"x","ua":"curl/8","v":[1,2]}` + "\n",                       // junk UA
		`{"sid":"x","ua":"Mozilla/5.0 Chrome/112.0.0.0","v":[1,2]}` + "\n", // wrong width
	}
	for i, c := range cases {
		if _, _, err := ReadJSONL(strings.NewReader(c), 28); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestJSONLTrainEquivalence(t *testing.T) {
	// Training from the exported file matches training from memory.
	d, err := Generate(smallConfig(8000))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf, false); err != nil {
		t.Fatal(err)
	}
	fromFile, _, err := ReadJSONL(&buf, 28)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultTrainConfig()
	a, _, err := core.Train(d.Samples(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := core.Train(fromFile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy != b.Accuracy {
		t.Fatalf("file-trained accuracy %.6f != memory-trained %.6f", b.Accuracy, a.Accuracy)
	}
}
