package dataset

import (
	"sort"

	"polygraph/internal/core"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// StratifiedSample implements the scaling strategy the paper proposes for
// unmanageably large datasets (§8, "Scale of the database"): sample the
// training rows per user-agent stratum, capping dominant releases while
// keeping every rare release fully represented, "ensuring the
// representativeness of diverse data segments".
//
// perUACap bounds the rows kept per user-agent; rows beyond the cap are
// sampled uniformly without replacement. The output preserves the
// original relative order within and across strata, so training remains
// deterministic.
func StratifiedSample(samples []core.Sample, perUACap int, seed uint64) []core.Sample {
	if perUACap <= 0 || len(samples) == 0 {
		return nil
	}
	byUA := map[ua.Release][]int{}
	for i, s := range samples {
		byUA[s.UA] = append(byUA[s.UA], i)
	}
	// Deterministic stratum order.
	strata := make([]ua.Release, 0, len(byUA))
	for rel := range byUA {
		strata = append(strata, rel)
	}
	sort.Slice(strata, func(i, j int) bool {
		if strata[i].Vendor != strata[j].Vendor {
			return strata[i].Vendor < strata[j].Vendor
		}
		return strata[i].Version < strata[j].Version
	})

	gen := rng.New(seed)
	var keep []int
	for _, rel := range strata {
		idx := byUA[rel]
		if len(idx) <= perUACap {
			keep = append(keep, idx...)
			continue
		}
		gen.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		chosen := append([]int(nil), idx[:perUACap]...)
		sort.Ints(chosen)
		keep = append(keep, chosen...)
	}
	sort.Ints(keep)
	out := make([]core.Sample, len(keep))
	for i, j := range keep {
		out[i] = samples[j]
	}
	return out
}
