// Package dataset generates the synthetic stand-in for FinOrg's
// production traffic (paper §6.2, §7.1): logged-in user sessions over a
// simulated calendar, each carrying a claimed user-agent, a coarse-grained
// fingerprint extracted from a concrete browser profile, the internal risk
// tags FinOrg supplied for evaluation (Untrusted_IP, Untrusted_Cookie,
// ATO), and ground-truth fraud labels the paper never had.
//
// Day 0 of the simulated calendar is 2023-03-01; the paper's training
// window (March – mid-July 2023) is days [0, 137) and the drift window
// (late-July – October 2023) is roughly days [145, 245].
package dataset

import (
	"math"

	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// Window bounds a simulated collection period in days since 2023-03-01.
type Window struct {
	StartDay, EndDay int // [StartDay, EndDay)
}

// TrainingWindow is the paper's 4.5-month training collection
// (March 1 – July 15, 2023).
var TrainingWindow = Window{StartDay: 0, EndDay: 137}

// DriftWindow is the paper's late-July – October 2023 drift collection.
var DriftWindow = Window{StartDay: 145, EndDay: 245}

// releaseDay returns the simulated day the release shipped. The cadence
// follows the real 2023 calendar closely: Chrome 111 on Mar 7 (day 6),
// Firefox 111 on Mar 14 (day 13), both on four-week trains; Edge tracks
// Chrome with a one-week lag. Older versions have (large) negative days.
func releaseDay(r ua.Release) int {
	switch r.Vendor {
	case ua.Chrome:
		return 6 + (r.Version-111)*28
	case ua.Firefox:
		if r.Version <= 52 {
			// Pre-2017 cadence was slower; exact dates are irrelevant,
			// only "very old".
			return 13 + (52-111)*28 - (52-r.Version)*45
		}
		return 13 + (r.Version-111)*28
	case ua.Edge:
		if r.IsLegacyEdge() {
			// EdgeHTML 17/18/19 shipped across 2018-2019.
			return -1700 + (r.Version-17)*180
		}
		return 13 + (r.Version-111)*28 // Chrome day + 7
	default:
		return 1 << 30
	}
}

// usageWeight returns the relative traffic share of a release on a given
// day: a two-week adoption ramp, exponential decay once the next train
// ships, and a long laggard tail that keeps old versions alive at low
// rates (the paper saw 113 distinct releases, with old versions under 2%
// of traffic). Firefox ESR lines get a stronger tail.
func usageWeight(r ua.Release, day int) float64 {
	rd := releaseDay(r)
	age := day - rd
	if age < 0 {
		return 0 // not shipped yet
	}
	ramp := float64(age) / 14
	if ramp > 1 {
		ramp = 1
	}
	decay := 1.0
	if age > 35 {
		decay = math.Exp(-float64(age-35) / 40)
	}
	w := ramp * decay
	// Laggard tail: users who never update. Enterprise-pinned lines
	// (Firefox ESR, legacy EdgeHTML fleets) decay far slower, which is
	// what keeps the paper's old-browser clusters populated while
	// limiting the distinct-release count to the same order as the
	// paper's 113.
	tail := 0.0035 * math.Exp(-float64(age)/500)
	if r.Vendor == ua.Firefox && isESR(r.Version) {
		tail *= 8
	}
	if r.Vendor == ua.Firefox && r.Version <= 50 {
		// Pre-Quantum Firefox pinned on legacy OS installs.
		tail = 0.0030 * math.Exp(-float64(age)/1400)
	}
	if r.IsLegacyEdge() {
		// EdgeHTML lives on in unmanaged enterprise fleets.
		tail = 0.0035 * math.Exp(-float64(age)/1400) * 6
	}
	w += tail
	return w * vendorShare(r.Vendor)
}

// isESR reports Firefox Extended Support Release lines in the modeled
// range.
func isESR(v int) bool {
	switch v {
	case 52, 60, 68, 78, 91, 102, 115:
		return true
	}
	return false
}

func vendorShare(v ua.Vendor) float64 {
	switch v {
	case ua.Chrome:
		return 0.58
	case ua.Firefox:
		return 0.28
	case ua.Edge:
		return 0.14
	default:
		return 0
	}
}

// uaSampler draws releases from the day-conditional usage distribution.
type uaSampler struct {
	days     []dayDist
	startDay int
}

type dayDist struct {
	releases []ua.Release
	cdf      []float64
}

// newUASampler precomputes per-day release CDFs over the window, capping
// the universe at maxVersion (training data must not contain releases
// from the future).
func newUASampler(w Window, maxVersion int) *uaSampler {
	universe := ua.Universe(maxVersion)
	s := &uaSampler{startDay: w.StartDay}
	for day := w.StartDay; day < w.EndDay; day++ {
		var dist dayDist
		total := 0.0
		for _, r := range universe {
			wgt := usageWeight(r, day)
			if wgt <= 0 {
				continue
			}
			total += wgt
			dist.releases = append(dist.releases, r)
			dist.cdf = append(dist.cdf, total)
		}
		for i := range dist.cdf {
			dist.cdf[i] /= total
		}
		s.days = append(s.days, dist)
	}
	return s
}

// Sample draws a release for the given day.
func (s *uaSampler) Sample(day int, gen *rng.PCG) ua.Release {
	idx := day - s.startDay
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.days) {
		idx = len(s.days) - 1
	}
	d := s.days[idx]
	u := gen.Float64()
	lo, hi := 0, len(d.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return d.releases[lo]
}
