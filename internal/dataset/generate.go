package dataset

import (
	"fmt"

	"polygraph/internal/browser"
	"polygraph/internal/core"
	"polygraph/internal/fingerprint"
	"polygraph/internal/fraud"
	"polygraph/internal/rng"
	"polygraph/internal/ua"
)

// Tags are FinOrg's internal session annotations, used by the paper
// purely for evaluation (§7.1).
type Tags struct {
	UntrustedIP     bool
	UntrustedCookie bool
	ATO             bool
}

// Session is one logged-in user session as the collection tier sees it,
// plus the ground truth only the generator knows.
type Session struct {
	ID       [fingerprint.SessionIDSize]byte
	Day      int
	Claimed  ua.Release
	UAString string
	OS       ua.OS
	Vector   []float64
	Tags     Tags

	// Ground truth (not visible to the detector):
	Fraud     bool
	FraudTool string
	// ActualRelease is the engine that really produced the fingerprint.
	ActualRelease ua.Release
	// Modifier names the perturbation applied to a legitimate session
	// ("" for pristine sessions).
	Modifier string
}

// Config parameterizes traffic generation. Rates were calibrated so the
// trained detector reproduces the shape of the paper's Table 4 (see
// EXPERIMENTS.md).
type Config struct {
	Sessions int
	Seed     uint64
	Window   Window
	// MaxVersion caps the release universe (114 for the training
	// window; 119 for the drift window).
	MaxVersion int

	// FraudRate is the fraction of sessions driven by fraud browsers.
	FraudRate float64
	// Legitimate-traffic perturbation rates (§6.3 phenomena):
	FirefoxConfigRate float64 // about:config tweaks among Firefox users
	ChromeExtRate     float64 // surface-visible extensions among Chromium users
	BraveRate         float64 // Brave among claimed-Chrome sessions
	TorRate           float64 // Tor among claimed-Firefox sessions

	// Chrome119RolloutRate is the fraction of Chrome 119 sessions held
	// back on the previous platform surface by the staged rollout
	// (drives the Table 6 accuracy dip to the paper's ~97.2%).
	Chrome119RolloutRate float64

	// UpdateSkewRate is the fraction of legitimate sessions whose
	// user-agent has already moved to version N while the JavaScript
	// surface still reports version N-1 (mid-update restarts, partial
	// rollouts). These are the paper's benign flagged sessions: "lower
	// risk factors ... could result from update inconsistencies" (§7.1).
	UpdateSkewRate float64

	// Tag model: probabilities conditioned on session legitimacy.
	LegitIPRate, LegitCookieRate, LegitATORate float64
	FraudIPRate, FraudCookieRate               float64
	// FraudATOBase/Slope: P(ATO | fraud) = Base + Slope·min(mismatch,20)
	// where mismatch is the vendor/version distance between the claimed
	// user-agent and the actual engine — sloppier spoofs correlate with
	// real account takeover activity (§7.1 observes exactly this
	// gradient).
	FraudATOBase, FraudATOSlope float64
}

// DefaultConfig reproduces the paper's training collection: 205k sessions
// over 4.5 months, base tag rates from Table 4 row 1.
func DefaultConfig() Config {
	return Config{
		Sessions:   205000,
		Seed:       2023,
		Window:     TrainingWindow,
		MaxVersion: 114,

		FraudRate:         0.0032,
		FirefoxConfigRate: 0.012,
		ChromeExtRate:     0.030,
		BraveRate:         0.012,
		TorRate:           0.0012,

		Chrome119RolloutRate: 0.028,
		UpdateSkewRate:       0.006,

		LegitIPRate:     0.51,
		LegitCookieRate: 0.49,
		LegitATORate:    0.0042,
		FraudIPRate:     0.93,
		FraudCookieRate: 0.87,
		FraudATOBase:    0.012,
		FraudATOSlope:   0.0050,
	}
}

// Dataset is the generated traffic plus the machinery that produced it.
type Dataset struct {
	Sessions  []Session
	Extractor *fingerprint.Extractor
	Oracle    *browser.Oracle
	Config    Config
}

// Generate builds a dataset. The same Config always yields bit-identical
// traffic.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("dataset: Sessions = %d", cfg.Sessions)
	}
	if cfg.Window.EndDay <= cfg.Window.StartDay {
		return nil, fmt.Errorf("dataset: empty window [%d,%d)", cfg.Window.StartDay, cfg.Window.EndDay)
	}
	if cfg.MaxVersion < 59 {
		return nil, fmt.Errorf("dataset: MaxVersion %d below modeled floor", cfg.MaxVersion)
	}
	oracle := browser.NewOracle()
	ext := fingerprint.NewExtractor(oracle, fingerprint.Table8())
	d := &Dataset{
		Sessions:  make([]Session, 0, cfg.Sessions),
		Extractor: ext,
		Oracle:    oracle,
		Config:    cfg,
	}
	sampler := newUASampler(cfg.Window, cfg.MaxVersion)
	gen := rng.New(cfg.Seed)
	tools := fraud.DetectableTools()

	for i := 0; i < cfg.Sessions; i++ {
		day := cfg.Window.StartDay + gen.Intn(cfg.Window.EndDay-cfg.Window.StartDay)
		var s Session
		if gen.Bool(cfg.FraudRate) {
			s = d.fraudSession(day, sampler, tools, gen)
		} else {
			s = d.legitSession(day, sampler, gen, cfg)
		}
		fillSessionID(&s, gen)
		s.UAString = ua.UserAgent(s.Claimed, s.OS)
		d.assignTags(&s, gen, cfg)
		d.Sessions = append(d.Sessions, s)
	}
	return d, nil
}

// fillSessionID draws an opaque random identifier (appendix A: FinOrg's
// session IDs were "completely opaque and randomized").
func fillSessionID(s *Session, gen *rng.PCG) {
	for i := 0; i < len(s.ID); i += 8 {
		v := gen.Uint64()
		for j := 0; j < 8 && i+j < len(s.ID); j++ {
			s.ID[i+j] = byte(v >> (8 * j))
		}
	}
}

func osFor(gen *rng.PCG) ua.OS {
	switch {
	case gen.Bool(0.62):
		return ua.Windows10
	case gen.Bool(0.55):
		return ua.Windows11
	case gen.Bool(0.5):
		return ua.MacOSSonoma
	default:
		return ua.MacOSSequoia
	}
}

// legitSession builds an honest session: the claimed user-agent equals
// the engine, with occasional configuration noise and derivative
// browsers.
func (d *Dataset) legitSession(day int, sampler *uaSampler, gen *rng.PCG, cfg Config) Session {
	rel := sampler.Sample(day, gen)
	os := osFor(gen)
	profile := browser.Profile{Release: rel, OS: os}
	modifier := ""

	switch rel.Vendor {
	case ua.Firefox:
		switch {
		case gen.Bool(cfg.TorRate):
			// Tor rides the current ESR and reports its user-agent.
			esr := ua.Release{Vendor: ua.Firefox, Version: 102}
			if cfg.MaxVersion >= 115 && day >= releaseDay(ua.Release{Vendor: ua.Firefox, Version: 115}) {
				esr = ua.Release{Vendor: ua.Firefox, Version: 115}
			}
			rel = esr
			profile = browser.Profile{Release: esr, OS: os, Mods: []browser.Modifier{browser.TorShift()}}
			modifier = "tor"
		case gen.Bool(cfg.FirefoxConfigRate):
			if gen.Bool(0.6) {
				profile.Mods = []browser.Modifier{browser.FirefoxServiceWorkersDisabled()}
				modifier = "firefox-config-sw"
			} else {
				profile.Mods = []browser.Modifier{browser.FirefoxTransformGetters()}
				modifier = "firefox-config-getters"
			}
		}
	case ua.Chrome:
		switch {
		case gen.Bool(cfg.BraveRate):
			profile.Mods = []browser.Modifier{browser.BraveShift()}
			modifier = "brave"
		case gen.Bool(cfg.ChromeExtRate):
			if gen.Bool(0.5) {
				profile.Mods = []browser.Modifier{browser.ChromeExtensionDuckDuckGo()}
				modifier = "chrome-ext-ddg"
			} else {
				profile.Mods = []browser.Modifier{browser.ChromeExtensionGeneric(gen.IntRange(1, 4))}
				modifier = "chrome-ext-generic"
			}
		}
	case ua.Edge:
		if !rel.IsLegacyEdge() && gen.Bool(cfg.ChromeExtRate/2) {
			profile.Mods = []browser.Modifier{browser.ChromeExtensionGeneric(gen.IntRange(1, 3))}
			modifier = "edge-ext-generic"
		}
	}

	// Staged Chrome 119 rollout (drift window only, §7.3): a held-back
	// minority of Chrome 119 clients still serves the full previous-era
	// platform surface, which is what drags the release's drift-window
	// clustering accuracy to the paper's 97.22%.
	if rel.Vendor == ua.Chrome && rel.Version == 119 && gen.Bool(cfg.Chrome119RolloutRate) {
		profile.Release = ua.Release{Vendor: ua.Chrome, Version: 113}
		modifier = "chrome119-holdback"
	}

	// Update skew: the claimed user-agent is one version ahead of the
	// engine surface. Only matters (and only flags) at era boundaries.
	if modifier == "" && gen.Bool(cfg.UpdateSkewRate) {
		lagged := ua.Release{Vendor: rel.Vendor, Version: rel.Version - 1}
		if lagged.Valid() {
			profile.Release = lagged
			modifier = "update-skew"
		}
	}

	return Session{
		Day:           day,
		Claimed:       rel,
		OS:            profile.OS,
		Vector:        d.Extractor.Extract(profile),
		ActualRelease: profile.Release,
		Modifier:      modifier,
	}
}

// fraudSession builds a fraud-browser session impersonating a victim
// whose browser follows the popular-release distribution (stolen profiles
// mirror the victim population).
func (d *Dataset) fraudSession(day int, sampler *uaSampler, tools []fraud.Tool, gen *rng.PCG) Session {
	tool := tools[gen.Intn(len(tools))]
	victim := sampler.Sample(day, gen)
	spoof := tool.Spoof(victim, osFor(gen), gen)
	return Session{
		Day:           day,
		Claimed:       spoof.Claimed,
		OS:            spoof.Profile.OS,
		Vector:        d.Extractor.Extract(spoof.Profile),
		Fraud:         true,
		FraudTool:     spoof.Tool,
		ActualRelease: spoof.Profile.Release,
	}
}

// assignTags draws the FinOrg risk tags conditioned on ground truth.
func (d *Dataset) assignTags(s *Session, gen *rng.PCG, cfg Config) {
	if !s.Fraud {
		s.Tags = Tags{
			UntrustedIP:     gen.Bool(cfg.LegitIPRate),
			UntrustedCookie: gen.Bool(cfg.LegitCookieRate),
			ATO:             gen.Bool(cfg.LegitATORate),
		}
		return
	}
	mismatch := ua.Distance(s.Claimed, s.ActualRelease, ua.DefaultVersionDivisor)
	if mismatch > 20 {
		mismatch = 20
	}
	s.Tags = Tags{
		UntrustedIP:     gen.Bool(cfg.FraudIPRate),
		UntrustedCookie: gen.Bool(cfg.FraudCookieRate),
		ATO:             gen.Bool(cfg.FraudATOBase + cfg.FraudATOSlope*float64(mismatch)),
	}
}

// Samples converts the dataset into core training samples.
func (d *Dataset) Samples() []core.Sample {
	out := make([]core.Sample, len(d.Sessions))
	for i, s := range d.Sessions {
		out[i] = core.Sample{Vector: s.Vector, UA: s.Claimed}
	}
	return out
}

// SessionsForRelease returns the sessions claiming a specific release —
// the drift detector evaluates new releases this way.
func (d *Dataset) SessionsForRelease(r ua.Release) []Session {
	var out []Session
	for _, s := range d.Sessions {
		if s.Claimed == r {
			out = append(out, s)
		}
	}
	return out
}

// DistinctReleases counts the distinct claimed user-agents (the paper's
// "113 different browser releases").
func (d *Dataset) DistinctReleases() int {
	seen := map[ua.Release]bool{}
	for _, s := range d.Sessions {
		seen[s.Claimed] = true
	}
	return len(seen)
}
