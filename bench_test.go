package polygraph

// bench_test.go regenerates every table and figure of the paper's
// evaluation as a testing.B benchmark, so `go test -bench=.` both times
// the pipeline and re-derives the results. One benchmark per table and
// figure, as DESIGN.md's experiment index specifies; the measured values
// are reported via b.ReportMetric where a single number captures the
// headline (accuracy, flag counts, payload size).

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"polygraph/internal/benchjson"
	"polygraph/internal/browser"
	"polygraph/internal/collect"
	"polygraph/internal/experiments"
	"polygraph/internal/fingerprint"
	"polygraph/internal/ua"
)

// benchSessions keeps bench runs fast while preserving every structural
// result; cmd/reproduce -sessions 205000 runs the paper-scale version.
const benchSessions = 40000

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error

	// benchReport collects the benchmark trajectory when
	// POLYGRAPH_BENCH_JSON arms it (see internal/benchjson); nil (the
	// default) makes every emitBench call a no-op.
	benchReport, benchReportPath = benchjson.FromEnv(benchSessions)
)

// TestMain flushes the armed benchmark-trajectory snapshot after the run.
func TestMain(m *testing.M) {
	code := m.Run()
	if err := benchReport.WriteFile(benchReportPath); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// emitBench records one benchmark's ns/op plus headline metrics into the
// trajectory snapshot. Call it via defer after b.ResetTimer so Elapsed
// covers only measured work.
func emitBench(b *testing.B, metrics map[string]float64) {
	if benchReport == nil {
		return
	}
	nsPerOp := 0.0
	if b.N > 0 {
		nsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}
	benchReport.Add(b.Name(), nsPerOp, metrics)
}

func sharedBenchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.NewEnv(benchSessions, 0)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// BenchmarkTable2Performance regenerates the tool comparison: collection
// cost and payload bytes per tool.
func BenchmarkTable2Performance(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2()
	}
	for _, r := range rows {
		if r.Tool == "BROWSER POLYGRAPH" {
			b.ReportMetric(float64(r.StorageBytes), "payload-bytes")
		}
	}
}

// BenchmarkTable3Train times the full production training pipeline and
// reports its clustering accuracy (paper: 99.6%).
func BenchmarkTable3Train(b *testing.B) {
	benchmarkTrain(b, 0)
}

// BenchmarkTable3TrainSerial pins Workers=1 — the baseline the parallel
// pipeline is measured against (trained models are bit-identical; see
// TestTrainWorkerCountInvariance).
func BenchmarkTable3TrainSerial(b *testing.B) {
	benchmarkTrain(b, 1)
}

func benchmarkTrain(b *testing.B, workers int) {
	env := sharedBenchEnv(b)
	cfg := DefaultTrainConfig()
	cfg.Workers = workers
	var acc float64
	var stages []StageTiming
	b.ResetTimer()
	defer func() {
		emitBench(b, map[string]float64{
			"accuracy-%": acc * 100,
			"workers":    float64(workers),
		})
		benchReport.AddStages(b.Name()+"/stage", stages)
	}()
	for i := 0; i < b.N; i++ {
		m, rep, err := Train(env.Traffic.Samples(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		acc = m.Accuracy
		stages = rep.Stages
	}
	b.ReportMetric(acc*100, "accuracy-%")
}

// BenchmarkTable4Flagging scores the full traffic and reports the flagged
// session count (paper: 897 of 205k).
func BenchmarkTable4Flagging(b *testing.B) {
	env := sharedBenchEnv(b)
	var flagged int
	b.ResetTimer()
	defer func() { emitBench(b, map[string]float64{"flagged-sessions": float64(flagged)}) }()
	for i := 0; i < b.N; i++ {
		n, err := env.FlaggedCount()
		if err != nil {
			b.Fatal(err)
		}
		flagged = n
	}
	b.ReportMetric(float64(flagged), "flagged-sessions")
}

// BenchmarkTable5FraudDetection reruns the fraud-browser experiment and
// reports overall recall (paper: 67-84% per tool).
func BenchmarkTable5FraudDetection(b *testing.B) {
	env := sharedBenchEnv(b)
	var rows []experiments.Table5Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = env.Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	flagged, total := 0, 0
	for _, r := range rows {
		flagged += r.Flagged
		total += r.Flagged + r.NotFlagged
	}
	b.ReportMetric(100*float64(flagged)/float64(total), "recall-%")
}

// BenchmarkTable6Drift runs the drift calendar (paper: retrain on 10/31).
func BenchmarkTable6Drift(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if res.RetrainDate == "" {
			b.Fatal("drift not detected")
		}
	}
}

// BenchmarkTable7Entropy computes the feature-entropy table.
func BenchmarkTable7Entropy(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	var rows []experiments.EntropyRow
	for i := 0; i < b.N; i++ {
		rows = env.Table7(8)
	}
	b.ReportMetric(rows[0].Normalized, "ua-normalized-entropy")
}

// BenchmarkTable9K6 retrains at k=6 (Appendix-2).
func BenchmarkTable9K6(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Table9(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable10KSweep runs the Appendix-4 cluster-count sensitivity.
func BenchmarkTable10KSweep(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Table10(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable11PCASweep runs the PCA-components sensitivity.
func BenchmarkTable11PCASweep(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Table11(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable12FeatureSweep runs the feature-count sensitivity.
func BenchmarkTable12FeatureSweep(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Table12(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable13Windows runs the Appendix-5 comparison on Windows.
func BenchmarkTable13Windows(b *testing.B) {
	var rows []experiments.Table13Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AppendixFive(true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rows[0].Accuracy, "bp-accuracy-%")
}

// BenchmarkTable14MacOS runs the Appendix-5 comparison on macOS.
func BenchmarkTable14MacOS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AppendixFive(false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2PCA regenerates the cumulative-variance curve and
// reports what 7 components capture (paper: >98.5%).
func BenchmarkFigure2PCA(b *testing.B) {
	env := sharedBenchEnv(b)
	var pts []experiments.FigurePoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = env.Figure2()
	}
	b.ReportMetric(100*pts[6].Y, "cumvar-7-comps-%")
}

// BenchmarkFigure3Elbow regenerates the WCSS elbow curve.
func BenchmarkFigure3Elbow(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Figure3(16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4RelativeWCSS regenerates the relative-WCSS series.
func BenchmarkFigure4RelativeWCSS(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Figure4(16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Anonymity regenerates the anonymity-set distribution
// and reports the unique-fingerprint rate (paper: 0.3%).
func BenchmarkFigure5Anonymity(b *testing.B) {
	env := sharedBenchEnv(b)
	var res experiments.Figure5Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = env.Figure5()
	}
	b.ReportMetric(100*res.UniqueRate, "unique-fp-%")
}

// BenchmarkOnlineScore times the production scoring path (paper budget:
// 100 ms; Table 2 claims 6 ms end to end).
func BenchmarkOnlineScore(b *testing.B) {
	env := sharedBenchEnv(b)
	vec := env.Traffic.Sessions[0].Vector
	claimed := env.Traffic.Sessions[0].Claimed
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := env.Model.Score(vec, claimed); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	defer func() { emitBench(b, map[string]float64{"allocs-per-op": allocs}) }()
	for i := 0; i < b.N; i++ {
		if _, err := env.Model.Score(vec, claimed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineScoreScratch is BenchmarkOnlineScore with caller-owned
// scratch (NewScratch + ScoreWith) — the per-connection serving shape,
// which skips even the scratch pool round-trip. Steady state is 0
// allocs/op; scripts/benchgate.sh gates on it.
func BenchmarkOnlineScoreScratch(b *testing.B) {
	env := sharedBenchEnv(b)
	vec := env.Traffic.Sessions[0].Vector
	claimed := env.Traffic.Sessions[0].Claimed
	scratch := env.Model.NewScratch()
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := env.Model.ScoreWith(scratch, vec, claimed); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	defer func() { emitBench(b, map[string]float64{"allocs-per-op": allocs}) }()
	for i := 0; i < b.N; i++ {
		if _, err := env.Model.ScoreWith(scratch, vec, claimed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreBatch measures the batched scoring fan-out over the full
// bench traffic — the web-scale backfill shape (paper §6.4: score 205k
// sessions in one pass). Compare against BenchmarkScoreBatchSerial for
// the pool's speedup; results are identical by construction.
func BenchmarkScoreBatch(b *testing.B) {
	benchmarkScoreBatch(b, 0)
}

// BenchmarkScoreBatchSerial pins Workers=1, the serial baseline.
func BenchmarkScoreBatchSerial(b *testing.B) {
	benchmarkScoreBatch(b, 1)
}

func benchmarkScoreBatch(b *testing.B, workers int) {
	env := sharedBenchEnv(b)
	sessions := env.Traffic.Sessions
	vectors := make([][]float64, len(sessions))
	claims := make([]ua.Release, len(sessions))
	for i, s := range sessions {
		vectors[i] = s.Vector
		claims[i] = s.Claimed
	}
	b.ResetTimer()
	defer func() {
		perSec := 0.0
		if secs := b.Elapsed().Seconds(); secs > 0 {
			perSec = float64(len(sessions)) * float64(b.N) / secs
		}
		b.ReportMetric(perSec, "sessions/sec")
		emitBench(b, map[string]float64{
			"sessions-per-sec": perSec,
			"workers":          float64(workers),
		})
	}()
	for i := 0; i < b.N; i++ {
		if _, err := env.Model.ScoreBatchWorkers(vectors, claims, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectionExtract times the client-side probe evaluation that
// the ≤1 KB payload carries.
func BenchmarkCollectionExtract(b *testing.B) {
	oracle := browser.NewOracle()
	ext := fingerprint.NewExtractor(oracle, fingerprint.Table8())
	profile := browser.Profile{Release: ua.Release{Vendor: ua.Chrome, Version: 112}, OS: ua.Windows10}
	dst := make([]float64, ext.Dim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext.ExtractInto(profile, dst)
	}
}

// BenchmarkCollectionScript times rendering the embeddable JS collector.
func BenchmarkCollectionScript(b *testing.B) {
	feats := fingerprint.Table8()
	var script string
	for i := 0; i < b.N; i++ {
		script = collect.CollectionScript(feats, "/v1/collect-json")
	}
	b.ReportMetric(float64(len(script)), "script-bytes")
}

// BenchmarkOnlineScoreParallel measures scoring throughput under
// concurrency — the web-scale serving shape.
func BenchmarkOnlineScoreParallel(b *testing.B) {
	env := sharedBenchEnv(b)
	vec := env.Traffic.Sessions[0].Vector
	claimed := env.Traffic.Sessions[0].Claimed
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := env.Model.Score(vec, claimed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRiskGate measures the full per-session decision stack:
// polygraph scoring plus the risk-based-authentication policy.
func BenchmarkRiskGate(b *testing.B) {
	env := sharedBenchEnv(b)
	policy := DefaultRiskPolicy()
	s := env.Traffic.Sessions[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.Model.Score(s.Vector, s.Claimed)
		if err != nil {
			b.Fatal(err)
		}
		_ = policy.Evaluate(RiskSignals{
			Polygraph:       res,
			UntrustedIP:     s.Tags.UntrustedIP,
			UntrustedCookie: s.Tags.UntrustedCookie,
		})
	}
}

// BenchmarkExtensionExperiments times the §8 extension analyses.
func BenchmarkExtensionExperiments(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.StratifiedSampling(2000); err != nil {
			b.Fatal(err)
		}
	}
}
