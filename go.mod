module polygraph

go 1.22
